"""The fault model: seeded, deterministic network perturbations.

A :class:`FaultModel` is a frozen description of everything that can go
wrong on the wire: per-message drop and corruption rates, per-node
straggler delay distributions, crash schedules, and an adversarial
worst-pair scheduler.  It is *pure configuration* — hashable, picklable,
and safe to embed in :class:`~repro.core.params.AlgorithmParameters` and
sweep cache keys.

A :class:`FaultInjector` is one run's stateful instance of the model.
Determinism is structural: the injector keeps a call counter and seeds a
fresh ``np.random.default_rng([seed, call_index])`` per routing attempt,
so replaying the same seed against the same message sequence yields a
bit-identical perturbation sequence regardless of how rates are set.

Corruption comes in two flavors.  *Detected* corruption mangles a
message whose checksummed envelope then fails verification at the
receiver — the healing protocol retransmits it like a drop.  *Silent*
corruption evades the checksum: the delivered payload is mangled
in-place (node ids stay in ``[0, n)`` so downstream kernels keep
working) and only an end-of-run recount self-check can catch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

import numpy as np

from repro.congest.batch import MessageBatch


@dataclass(frozen=True)
class FaultModel:
    """Seeded, deterministic description of network faults.

    Attributes
    ----------
    seed:
        Root seed for every random draw the injector makes.
    drop_rate:
        Per-message probability that a copy is lost in flight.
    corruption_rate:
        Per-message probability of a detected (checksum-failing)
        corruption; healed exactly like a drop.
    silent_corruption_rate:
        Per-message probability of a checksum-evading corruption on the
        *delivered* copy; only the recount self-check can catch it.
    stragglers:
        ``((node, probability, delay_rounds), ...)`` — per-node straggler
        distributions.  Each attempt in which a configured node
        participates, it stalls the whole attempt by ``delay_rounds``
        with the given probability (the attempt pays the max delay over
        triggered nodes, charged as a tagged recovery row).
    crash_windows:
        ``((node, down_from, up_at), ...)`` — node crash schedules in
        units of retransmission attempts: the node is down for attempts
        ``down_from <= a < up_at`` (``up_at = -1`` means it never comes
        back).  Messages touching a down node fail that attempt.
    adversary_pairs:
        The adversarial worst-pair scheduler kills every message between
        the ``adversary_pairs`` busiest (src, dst) pairs of the pattern.
    adversary_attempts:
        Number of leading attempts the adversary acts on (``0`` disables
        it).  A value above ``retry_budget`` starves those pairs for the
        whole healing loop and forces a typed abort.
    retry_budget:
        Maximum number of retransmission attempts the self-healing
        protocol may spend per routing step before raising
        :class:`~repro.congest.errors.RetryBudgetExceededError`.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corruption_rate: float = 0.0
    silent_corruption_rate: float = 0.0
    stragglers: Tuple[Tuple[int, float, float], ...] = ()
    crash_windows: Tuple[Tuple[int, int, int], ...] = ()
    adversary_pairs: int = 0
    adversary_attempts: int = 0
    retry_budget: int = 8

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corruption_rate", "silent_corruption_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if self.adversary_pairs < 0 or self.adversary_attempts < 0:
            raise ValueError("adversary configuration must be non-negative")
        # Normalize to tuples-of-tuples so the model stays hashable even
        # when constructed from lists.
        object.__setattr__(
            self, "stragglers",
            tuple((int(v), float(p), float(d)) for v, p, d in self.stragglers),
        )
        object.__setattr__(
            self, "crash_windows",
            tuple((int(v), int(a), int(b)) for v, a, b in self.crash_windows),
        )
        for _, prob, delay in self.stragglers:
            if not 0.0 <= prob <= 1.0 or delay < 0:
                raise ValueError(f"bad straggler entry in {self.stragglers}")

    @property
    def active(self) -> bool:
        """Whether this model can perturb anything at all."""
        return bool(
            self.drop_rate > 0
            or self.corruption_rate > 0
            or self.silent_corruption_rate > 0
            or self.stragglers
            or self.crash_windows
            or (self.adversary_pairs > 0 and self.adversary_attempts > 0)
        )

    def injector(self) -> "FaultInjector":
        """A fresh stateful injector for one run."""
        return FaultInjector(self)


@dataclass
class AttemptReport:
    """What the network did to one routing attempt.

    ``failed`` / ``silent`` are boolean masks over the attempt's messages
    (failed copies are detected and retransmitted; silent ones are
    delivered mangled).  The counts break ``failed`` down by cause and
    ``straggler_rounds`` is the stall the attempt pays before completing.
    """

    failed: np.ndarray
    silent: np.ndarray
    dropped: int = 0
    corrupted: int = 0
    crashed: int = 0
    adversarial: int = 0
    straggler_rounds: float = 0.0


class FaultInjector:
    """One run's deterministic instance of a :class:`FaultModel`."""

    def __init__(self, model: FaultModel) -> None:
        self.model = model
        self._calls = 0

    @property
    def active(self) -> bool:
        return self.model.active

    def attempt(
        self, phase: str, attempt: int, src: np.ndarray, dst: np.ndarray, n: int
    ) -> AttemptReport:
        """Perturb one (re)transmission attempt of ``len(src)`` messages.

        Every call consumes exactly one point of the injector's seed
        sequence — ``default_rng([seed, call_index])`` — so two injectors
        built from the same model and fed the same attempt sequence
        produce bit-identical reports.
        """
        m = len(src)
        rng = np.random.default_rng([self.model.seed, self._calls])
        self._calls += 1
        model = self.model
        dropped = rng.random(m) < model.drop_rate
        corrupted = rng.random(m) < model.corruption_rate
        silent = rng.random(m) < model.silent_corruption_rate
        crashed = np.zeros(m, dtype=bool)
        for node, down_from, up_at in model.crash_windows:
            if attempt >= down_from and (up_at < 0 or attempt < up_at):
                crashed |= (src == node) | (dst == node)
        adversarial = np.zeros(m, dtype=bool)
        if model.adversary_pairs > 0 and attempt < model.adversary_attempts and m:
            adversarial = self._worst_pairs(src, dst, n)
        failed = dropped | corrupted | crashed | adversarial
        # A failed copy is retransmitted, so silent corruption only
        # matters on copies that actually get through.
        silent &= ~failed
        straggler_rounds = 0.0
        for node, prob, delay in model.stragglers:
            participates = bool(((src == node) | (dst == node)).any())
            stalls = rng.random() < prob
            if participates and stalls:
                straggler_rounds = max(straggler_rounds, delay)
        return AttemptReport(
            failed=failed,
            silent=silent,
            dropped=int(dropped.sum()),
            corrupted=int((corrupted & ~dropped).sum()),
            crashed=int((crashed & ~dropped & ~corrupted).sum()),
            adversarial=int(adversarial.sum()),
            straggler_rounds=straggler_rounds,
        )

    def _worst_pairs(self, src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
        """Mask of messages on the ``adversary_pairs`` busiest (src, dst)
        pairs — ties broken by pair id so the choice is deterministic."""
        keys = src.astype(np.int64) * n + dst.astype(np.int64)
        uniq, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        order = np.lexsort((uniq, -counts))
        top = order[: self.model.adversary_pairs]
        return np.isin(inverse, top)


def mangle_payload_matrix(
    payload: np.ndarray, rows: np.ndarray, n: int
) -> np.ndarray:
    """Silently corrupt the given rows of a payload word matrix.

    The last word of each row is shifted by one modulo ``n`` — a valid
    node id, so downstream kernels never crash, but for edge payloads
    the edge now names a different endpoint.  Collisions with the first
    word are skipped so no self-loop edges appear.
    """
    out = payload.copy()
    if out.shape[1] == 0 or len(rows) == 0:
        return out
    span = max(2, n)
    col = out.shape[1] - 1
    vals = (out[rows, col].astype(np.int64) + 1) % span
    if out.shape[1] >= 2:
        clash = vals == out[rows, 0].astype(np.int64)
        vals[clash] = (vals[clash] + 1) % span
    out[rows, col] = vals.astype(out.dtype)
    return out


def mangle_payload(payload: Any, n: int) -> Any:
    """Object-plane twin of :func:`mangle_payload_matrix` for one tuple
    payload.  Non-integer payloads pass through untouched (the fault
    plane only models corruption of word-encoded payloads)."""
    if (
        isinstance(payload, tuple)
        and payload
        and all(isinstance(x, (int, np.integer)) for x in payload)
    ):
        span = max(2, n)
        last = (int(payload[-1]) + 1) % span
        if len(payload) >= 2 and last == int(payload[0]):
            last = (last + 1) % span
        return payload[:-1] + (last,)
    return payload


def corrupt_batch(batch: MessageBatch, silent: np.ndarray, n: int) -> MessageBatch:
    """A copy of ``batch`` with the silently-corrupted rows mangled.

    Endpoint columns (src/dst) are left intact — the envelope survives,
    only the payload lies — so delivery order and loads are unchanged.
    """
    rows = np.nonzero(silent)[0]
    if len(rows) == 0:
        return batch
    payload = mangle_payload_matrix(batch.payload, rows, n)
    obj = batch.obj
    if obj is not None:
        obj = obj.copy()
        for i in rows.tolist():
            obj[i] = mangle_payload(obj[i], n)
    return MessageBatch(
        src=batch.src,
        dst=batch.dst,
        payload=payload,
        obj=obj,
        words_per_message=batch.words_per_message,
    )
