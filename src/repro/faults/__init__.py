"""Fault-injection plane: deterministic network faults + self-healing.

The congest substrate's routers (:class:`~repro.congest.congested_clique.
CongestedClique`, :class:`~repro.congest.routing.ClusterRouter`) accept an
optional fault seam.  A :class:`FaultModel` describes what the network
may do — seeded per-message drop/corruption rates, per-node straggler
delays, crash schedules, an adversarial worst-pair scheduler — and a
:class:`FaultInjector` replays it deterministically; the routers heal
around it with the checksummed ack-and-retry protocol of
:mod:`~repro.faults.heal`, charging every recovery round as a tagged
ledger row.  ``docs/faults.md`` describes the full model and the
accounting policy; ``tests/test_fault_differential.py`` holds faulted
runs to exact equality with fault-free ones.
"""

from repro.faults.heal import NACK_ROUND, heal_pattern
from repro.faults.model import (
    AttemptReport,
    FaultInjector,
    FaultModel,
    corrupt_batch,
    mangle_payload,
    mangle_payload_matrix,
)

__all__ = [
    "AttemptReport",
    "FaultInjector",
    "FaultModel",
    "NACK_ROUND",
    "corrupt_batch",
    "heal_pattern",
    "mangle_payload",
    "mangle_payload_matrix",
]
