"""CONGESTED CLIQUE model: all-to-all communication with word accounting.

In the CONGESTED CLIQUE, every pair of the n nodes (not just graph
neighbors) exchanges one O(log n)-bit word per round.  Two primitives
cover everything Theorem 1.3 needs:

- **uniform broadcast** — every node sends the same ≤ n-word vector to
  everyone: ``ceil(words / 1)`` rounds, since each of the n-1 links out of
  a node carries a dedicated copy (classic pipelining, 1 word per link per
  round means a w-word vector to all takes w rounds).
- **Lenzen routing** — an arbitrary multicommodity pattern where every
  node sends at most n·w and receives at most n·w words completes in
  O(w) rounds.  We charge ``lenzen_slack · ceil(max_load / n)``.

The class *performs* the data movement (mailboxes) and charges a ledger,
mirroring :class:`~repro.congest.routing.ClusterRouter`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.congest.batch import DeliveredBatch, MessageBatch, bincount_loads, deliver
from repro.congest.ledger import RoundLedger
from repro.congest.routing import CostModel, DEFAULT_COST_MODEL
from repro.congest.topology import Topology, makespan_charge, makespan_for_rounds
from repro.faults.heal import heal_pattern
from repro.faults.model import FaultInjector, corrupt_batch, mangle_payload


class CongestedClique:
    """An n-node congested clique with charged primitives.

    ``faults`` optionally attaches the fault-injection seam: a
    :class:`~repro.faults.model.FaultInjector` (or a
    :class:`~repro.faults.model.FaultModel`, instantiated on the spot)
    that perturbs every routed pattern.  The router then self-heals via
    the checksummed ack-and-retry protocol of :mod:`repro.faults.heal`,
    charging recovery rounds as tagged ledger rows; with ``faults=None``
    (the default) every code path is byte-identical to the fault-free
    router.

    ``topology`` optionally routes the same traffic over a non-clique
    overlay (:mod:`repro.congest.topology`): the uniform Lenzen rounds
    stay the headline charge on every phase, and a topology-aware
    ``makespan`` (bottleneck-link words ÷ bandwidth + hop latency) is
    recorded next to them.  ``None`` or the default clique keeps every
    ledger row byte-identical to the uniform model.
    """

    def __init__(
        self,
        n: int,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        faults: Optional[Any] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"need at least one node, got {n}")
        self.n = n
        self.cost_model = cost_model
        self.topology = topology
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = faults.injector()
        self.faults: Optional[FaultInjector] = faults

    # ------------------------------------------------------------------
    def route(
        self,
        messages: Mapping[int, Sequence[Tuple[int, Any]]],
        ledger: RoundLedger,
        phase: str,
        words_per_message: int = 1,
        extra_send_words: Optional[np.ndarray] = None,
        extra_recv_words: Optional[np.ndarray] = None,
        **stats: Any,
    ) -> Dict[int, List[Any]]:
        """Lenzen-route an arbitrary message pattern; charge the ledger.

        ``{src: [(dst, payload), ...]}`` with any src/dst in ``range(n)``.
        Cost: ``lenzen_slack * ceil(max(max_send, max_recv) / n)`` rounds.
        ``extra_send_words`` / ``extra_recv_words`` are optional length-n
        accounting-only loads added on top of the measured ones (the
        fake-edge padding of Theorem 1.3's proof — words that are charged
        but carry no payload); ``stats`` is merged into the phase charge.
        """
        send_load = [0] * self.n
        recv_load = [0] * self.n
        flat_src: List[int] = []
        flat_dst: List[int] = []
        flat_payload: List[Any] = []
        for src, batch in messages.items():
            self._check_node(src)
            for dst, payload in batch:
                self._check_node(dst)
                send_load[src] += words_per_message
                recv_load[dst] += words_per_message
                flat_src.append(src)
                flat_dst.append(dst)
                flat_payload.append(payload)
        self._charge_pattern(
            ledger, phase, np.asarray(send_load), np.asarray(recv_load),
            len(flat_payload), extra_send_words, extra_recv_words, stats,
            src=np.asarray(flat_src, dtype=np.int64),
            dst=np.asarray(flat_dst, dtype=np.int64),
            words_per_message=words_per_message,
        )
        silent = self._heal(
            ledger, phase, flat_src, flat_dst, words_per_message
        )
        delivered: Dict[int, List[Any]] = {v: [] for v in range(self.n)}
        for i, (dst, payload) in enumerate(zip(flat_dst, flat_payload)):
            if silent is not None and silent[i]:
                payload = mangle_payload(payload, self.n)
            delivered[dst].append(payload)
        return delivered

    def route_batch(
        self,
        batch: MessageBatch,
        ledger: RoundLedger,
        phase: str,
        extra_send_words: Optional[np.ndarray] = None,
        extra_recv_words: Optional[np.ndarray] = None,
        **stats: Any,
    ) -> DeliveredBatch:
        """Columnar twin of :meth:`route`: same ledger charge, zero
        per-payload Python objects.

        Loads come from one ``np.bincount`` per direction and delivery is
        an argsort-group on ``dst`` (:func:`repro.congest.batch.deliver`).
        The charged rounds and stats are bit-identical to what
        :meth:`route` charges for the same message pattern.
        """
        silent = self._charge_and_heal(
            batch, ledger, phase, extra_send_words, extra_recv_words, stats
        )
        if silent is not None and silent.any():
            batch = corrupt_batch(batch, silent, self.n)
        return deliver(batch, self.n)

    def charge_batch(
        self,
        batch: MessageBatch,
        ledger: RoundLedger,
        phase: str,
        extra_send_words: Optional[np.ndarray] = None,
        extra_recv_words: Optional[np.ndarray] = None,
        **stats: Any,
    ) -> None:
        """Validate and charge a batch pattern without central delivery.

        The parallel plane's charging endpoint: the ledger rounds and
        stats are exactly :meth:`route_batch`'s (same validation, same
        bincount loads, same charging path), but the mailbox fill is
        left to the shard workers, each of which delivers only its own
        destination range (:mod:`repro.parallel`).

        With a fault seam attached, the healing loop runs here too (the
        pattern must be fully acked before the workers fan out), but
        silent corruption is not modeled on the worker-side delivery —
        see ``docs/faults.md``.
        """
        self._charge_and_heal(
            batch, ledger, phase, extra_send_words, extra_recv_words, stats
        )

    def _charge_and_heal(
        self,
        batch: MessageBatch,
        ledger: RoundLedger,
        phase: str,
        extra_send_words: Optional[np.ndarray],
        extra_recv_words: Optional[np.ndarray],
        stats: Dict[str, Any],
    ) -> Optional[np.ndarray]:
        """Validate + charge a batch pattern, then run the healing loop.

        Returns the silent-corruption mask (None without a fault seam).
        The primary charge is always computed on the intended pattern —
        faults only ever *add* tagged recovery rows after it.
        """
        if len(batch):
            lo = int(min(batch.src.min(), batch.dst.min()))
            hi = int(max(batch.src.max(), batch.dst.max()))
            if lo < 0 or hi >= self.n:
                raise ValueError(
                    f"message endpoints outside clique of size {self.n}"
                )
        send_load, recv_load = bincount_loads(
            batch.src, batch.dst, self.n, batch.words_per_message
        )
        self._charge_pattern(
            ledger, phase, send_load, recv_load, len(batch),
            extra_send_words, extra_recv_words, stats,
            src=batch.src, dst=batch.dst,
            words_per_message=batch.words_per_message,
        )
        return self._heal(
            ledger, phase, batch.src, batch.dst, batch.words_per_message
        )

    def _heal(
        self,
        ledger: RoundLedger,
        phase: str,
        src: Any,
        dst: Any,
        words_per_message: int,
    ) -> Optional[np.ndarray]:
        """Ack-and-retry loop for one routed pattern (no-op sans seam)."""
        if self.faults is None or not self.faults.active:
            return None
        return heal_pattern(
            self.faults,
            ledger,
            phase,
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            space=self.n,
            n=self.n,
            words_per_message=words_per_message,
            retry_rounds=self.rounds_for_load,
        )

    def _charge_pattern(
        self,
        ledger: RoundLedger,
        phase: str,
        send_load: np.ndarray,
        recv_load: np.ndarray,
        total: int,
        extra_send_words: Optional[np.ndarray],
        extra_recv_words: Optional[np.ndarray],
        stats: Dict[str, Any],
        src: Optional[np.ndarray] = None,
        dst: Optional[np.ndarray] = None,
        words_per_message: int = 1,
    ) -> None:
        """Shared charging path — both planes land here with equal loads."""
        if extra_send_words is not None:
            send_load = send_load + np.asarray(extra_send_words, dtype=np.int64)
        if extra_recv_words is not None:
            recv_load = recv_load + np.asarray(extra_recv_words, dtype=np.int64)
        max_send = int(send_load.max(initial=0))
        max_recv = int(recv_load.max(initial=0))
        rounds = self.rounds_for_load(max_send, max_recv)
        if src is None or dst is None:
            makespan = makespan_for_rounds(self.topology, rounds)
            overlay_stats: Dict[str, Any] = {}
        else:
            makespan, overlay_stats = makespan_charge(
                self.topology, self.n, src, dst, words_per_message, rounds
            )
        ledger.charge(
            phase,
            rounds,
            makespan=makespan,
            n=self.n,
            messages=int(total),
            max_send_words=max_send,
            max_recv_words=max_recv,
            **stats,
            **overlay_stats,
        )

    def rounds_for_load(self, max_send_words: int, max_recv_words: int) -> float:
        """Lenzen charge for measured loads (0 rounds for no traffic)."""
        worst = max(max_send_words, max_recv_words)
        if worst == 0:
            return 0.0
        return self.cost_model.lenzen_slack * math.ceil(worst / self.n)

    def charge_for_word_load(
        self, ledger: RoundLedger, phase: str, max_words: int, **stats: Any
    ) -> float:
        """Charge a routing step with a precomputed max per-node load."""
        rounds = self.rounds_for_load(max_words, max_words)
        # Aggregate-only charge: no per-message pattern to route over the
        # overlay, so the makespan is the uniform charge rescaled.
        makespan = makespan_for_rounds(self.topology, rounds)
        ledger.charge(
            phase, rounds, makespan=makespan, n=self.n, max_words=max_words, **stats
        )
        return rounds

    def broadcast_rounds(self, words_per_node: int) -> float:
        """Rounds for every node to send the same w words to all others."""
        if words_per_node <= 0:
            return 0.0
        return float(words_per_node)

    def broadcast_makespan(self, words_per_node: int) -> float:
        """Topology-aware completion time of the uniform all-to-all
        broadcast: every node ships ``words_per_node`` words to every
        other node along its overlay route.  On the (default) clique
        this equals :meth:`broadcast_rounds` rescaled by link costs —
        and exactly equals it at unit bandwidth / zero latency."""
        rounds = self.broadcast_rounds(words_per_node)
        if self.topology is None or self.topology.is_clique:
            return makespan_for_rounds(self.topology, rounds)
        compiled = self.topology.compile(self.n)
        return compiled.broadcast_charge(int(words_per_node)).makespan

    def charge_broadcast(
        self, ledger: RoundLedger, phase: str, words_per_node: int, **stats: Any
    ) -> float:
        """Charge the uniform all-to-all broadcast with both cost views."""
        rounds = self.broadcast_rounds(words_per_node)
        ledger.charge(
            phase,
            rounds,
            makespan=self.broadcast_makespan(words_per_node),
            n=self.n,
            words_per_node=int(words_per_node),
            **stats,
        )
        return rounds

    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise ValueError(f"node {v} outside clique of size {self.n}")
