"""CONGESTED CLIQUE model: all-to-all communication with word accounting.

In the CONGESTED CLIQUE, every pair of the n nodes (not just graph
neighbors) exchanges one O(log n)-bit word per round.  Two primitives
cover everything Theorem 1.3 needs:

- **uniform broadcast** — every node sends the same ≤ n-word vector to
  everyone: ``ceil(words / 1)`` rounds, since each of the n-1 links out of
  a node carries a dedicated copy (classic pipelining, 1 word per link per
  round means a w-word vector to all takes w rounds).
- **Lenzen routing** — an arbitrary multicommodity pattern where every
  node sends at most n·w and receives at most n·w words completes in
  O(w) rounds.  We charge ``lenzen_slack · ceil(max_load / n)``.

The class *performs* the data movement (mailboxes) and charges a ledger,
mirroring :class:`~repro.congest.routing.ClusterRouter`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.congest.ledger import RoundLedger
from repro.congest.routing import CostModel, DEFAULT_COST_MODEL


class CongestedClique:
    """An n-node congested clique with charged primitives."""

    def __init__(
        self, n: int, cost_model: CostModel = DEFAULT_COST_MODEL
    ) -> None:
        if n < 1:
            raise ValueError(f"need at least one node, got {n}")
        self.n = n
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    def route(
        self,
        messages: Mapping[int, Sequence[Tuple[int, Any]]],
        ledger: RoundLedger,
        phase: str,
        words_per_message: int = 1,
    ) -> Dict[int, List[Any]]:
        """Lenzen-route an arbitrary message pattern; charge the ledger.

        ``{src: [(dst, payload), ...]}`` with any src/dst in ``range(n)``.
        Cost: ``lenzen_slack * ceil(max(max_send, max_recv) / n)`` rounds.
        """
        send_load = [0] * self.n
        recv_load = [0] * self.n
        delivered: Dict[int, List[Any]] = {v: [] for v in range(self.n)}
        total = 0
        for src, batch in messages.items():
            self._check_node(src)
            for dst, payload in batch:
                self._check_node(dst)
                send_load[src] += words_per_message
                recv_load[dst] += words_per_message
                delivered[dst].append(payload)
                total += 1
        rounds = self.rounds_for_load(max(send_load, default=0), max(recv_load, default=0))
        ledger.charge(
            phase,
            rounds,
            n=self.n,
            messages=total,
            max_send_words=max(send_load, default=0),
            max_recv_words=max(recv_load, default=0),
        )
        return delivered

    def rounds_for_load(self, max_send_words: int, max_recv_words: int) -> float:
        """Lenzen charge for measured loads (0 rounds for no traffic)."""
        worst = max(max_send_words, max_recv_words)
        if worst == 0:
            return 0.0
        return self.cost_model.lenzen_slack * math.ceil(worst / self.n)

    def charge_for_word_load(
        self, ledger: RoundLedger, phase: str, max_words: int, **stats: Any
    ) -> float:
        """Charge a routing step with a precomputed max per-node load."""
        rounds = self.rounds_for_load(max_words, max_words)
        ledger.charge(phase, rounds, n=self.n, max_words=max_words, **stats)
        return rounds

    def broadcast_rounds(self, words_per_node: int) -> float:
        """Rounds for every node to send the same w words to all others."""
        if words_per_node <= 0:
            return 0.0
        return float(words_per_node)

    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise ValueError(f"node {v} outside clique of size {self.n}")
