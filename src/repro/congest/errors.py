"""Exceptions raised by the model substrate.

These are *model violations*, not bugs in user graphs: they fire when an
algorithm attempts something the CONGEST / CONGESTED CLIQUE model forbids
(oversized messages, messaging a non-neighbor) or when a simulation safety
limit trips (a program that never halts).
"""

from __future__ import annotations


class ModelViolationError(Exception):
    """An operation not permitted by the communication model."""


class BandwidthExceededError(ModelViolationError):
    """A single message exceeded the O(log n)-bit word budget."""


class UnknownRecipientError(ModelViolationError):
    """A node attempted to message a non-neighbor in the CONGEST model."""


class SimulationLimitError(Exception):
    """The simulation exceeded its configured safety limits (rounds)."""
