"""Exceptions raised by the model substrate.

These are *model violations*, not bugs in user graphs: they fire when an
algorithm attempts something the CONGEST / CONGESTED CLIQUE model forbids
(oversized messages, messaging a non-neighbor) or when a simulation safety
limit trips (a program that never halts).
"""

from __future__ import annotations


class ModelViolationError(Exception):
    """An operation not permitted by the communication model."""


class BandwidthExceededError(ModelViolationError):
    """A single message exceeded the O(log n)-bit word budget."""


class UnknownRecipientError(ModelViolationError):
    """A node attempted to message a non-neighbor in the CONGEST model."""


class SimulationLimitError(Exception):
    """The simulation exceeded its configured safety limits (rounds)."""


class FaultError(Exception):
    """Base class for failures surfaced by the fault-injection plane.

    Fault errors always carry the charging context of the routing step
    that failed: the phase name under which rounds were being charged and
    the (0-based) retransmission attempt that was in flight.
    """

    def __init__(self, message: str, *, phase: str = "", attempt: int = 0) -> None:
        self.phase = phase
        self.attempt = attempt
        super().__init__(f"{message} (phase={phase!r}, attempt={attempt})")


class RetryBudgetExceededError(FaultError):
    """Self-healing gave up: messages were still undelivered after the
    fault model's retry budget was exhausted.

    ``pending`` is the number of messages that never got through and
    ``budget`` the configured retry limit; the run must abort rather than
    return counts computed from a partial delivery.
    """

    def __init__(
        self, *, phase: str, attempt: int, pending: int, budget: int
    ) -> None:
        self.pending = pending
        self.budget = budget
        super().__init__(
            f"retry budget of {budget} exhausted with {pending} "
            f"message(s) still undelivered",
            phase=phase,
            attempt=attempt,
        )


class CorruptionDetectedError(FaultError):
    """The end-of-run recount self-check found a result that disagrees
    with a trusted local recount — a checksum-evading corruption made it
    through the healing protocol.

    ``expected`` / ``actual`` are the trusted and observed quantities the
    self-check compared (e.g. clique counts).
    """

    def __init__(
        self, message: str, *, phase: str, expected: object, actual: object
    ) -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{message}: expected {expected!r}, got {actual!r}", phase=phase
        )
