"""Charged communication primitives for the CONGEST algorithms.

The paper invokes two black-box communication results:

- **Theorem 2.4 (intra-cluster routing)** — inside an n^δ-cluster, if
  every node sends and receives at most O(n^δ) messages, all of them can
  be routed in Õ(1) rounds (using only cluster edges, so clusters route in
  parallel).  More generally a load of L per node costs ⌈L/n^δ⌉·Õ(1).
- **neighbor broadcast** — a node with M messages for its neighbors needs
  max-per-edge-congestion rounds; this is elementary pipelining.

:class:`ClusterRouter` *performs* such routing steps (moving payloads
between per-node mailboxes) and charges the theorem's cost using the
measured loads.  The polylog slack of the theorem is represented by
:class:`CostModel`, which is explicit and configurable so the benchmarks
can report both "pure" (slack = 1) and "with polylog" charges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.congest.batch import DeliveredBatch, MessageBatch, bincount_loads, deliver
from repro.congest.ledger import RoundLedger
from repro.congest.topology import Topology, makespan_charge, makespan_for_rounds
from repro.faults.heal import heal_pattern
from repro.faults.model import FaultInjector, corrupt_batch, mangle_payload


@dataclass(frozen=True)
class CostModel:
    """Round-cost parameters for the charged primitives.

    Attributes
    ----------
    routing_slack:
        Multiplier standing in for the Õ(1)/2^{O(√log n)} factor of
        Theorem 2.4.  ``None`` (default) uses ``log2(n)``; a callable maps
        n to a factor; a number is used verbatim.
    lenzen_slack:
        Constant factor for Lenzen routing in the CONGESTED CLIQUE
        (2 covers the two phases of Lenzen's scheme).
    """

    routing_slack: Optional[Any] = None
    lenzen_slack: float = 2.0

    def __post_init__(self) -> None:
        slack = self.routing_slack
        if slack is not None and not callable(slack):
            if isinstance(slack, bool) or not isinstance(slack, (int, float)):
                raise TypeError(
                    f"routing_slack must be None (log2(n) default), a callable "
                    f"n -> factor, or a number; got {type(slack).__name__} "
                    f"{slack!r}"
                )
            if not math.isfinite(slack) or slack <= 0:
                raise ValueError(
                    f"routing_slack must be a positive finite factor, got {slack!r}"
                )
        if (
            isinstance(self.lenzen_slack, bool)
            or not isinstance(self.lenzen_slack, (int, float))
            or not math.isfinite(self.lenzen_slack)
            or self.lenzen_slack <= 0
        ):
            raise ValueError(
                f"lenzen_slack must be a positive finite number, "
                f"got {self.lenzen_slack!r}"
            )

    def routing_factor(self, n: int) -> float:
        """The Õ(1) slack used for intra-cluster routing charges."""
        if self.routing_slack is None:
            return max(1.0, math.log2(max(2, n)))
        if callable(self.routing_slack):
            return float(self.routing_slack(n))
        return float(self.routing_slack)


DEFAULT_COST_MODEL = CostModel()


def broadcast_rounds(per_edge_words: Mapping[Tuple[int, int], int]) -> int:
    """Rounds to clear the given per-directed-edge word loads by pipelining.

    This is the elementary CONGEST fact: a directed edge carries one word
    per round, so a phase where edge (u, v) must carry ``w`` words costs
    ``max w`` rounds (all edges work in parallel).
    """
    if not per_edge_words:
        return 0
    worst = max(per_edge_words.values())
    if worst < 0:
        raise ValueError("negative edge load")
    return int(worst)


class ClusterRouter:
    """Executes and charges intra-cluster routing (Theorem 2.4).

    Parameters
    ----------
    cluster_nodes:
        The nodes of the cluster C.
    capacity:
        The per-node per-Õ(1)-rounds throughput, i.e. the n^δ of the
        cluster guarantee.  The expander decomposition supplies the actual
        minimum cluster degree here, which is the real bandwidth the
        routing theorem exploits.
    n:
        Global number of nodes (for the polylog factor).
    cost_model:
        Slack configuration.
    topology:
        Overlay network the cluster's traffic is routed over (see
        ``repro.congest.topology``).  ``None`` or the default clique
        leaves every charge byte-identical to the uniform model; other
        overlays additionally report a per-link ``makespan`` on each
        charged phase.

    The router is also the bookkeeping point for the *mailboxes*: each
    cluster node has a dict-like knowledge store that routing phases
    append to.
    """

    def __init__(
        self,
        cluster_nodes: Iterable[int],
        capacity: int,
        n: int,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        faults: Optional[Any] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.nodes: List[int] = sorted(cluster_nodes)
        if not self.nodes:
            raise ValueError("cluster must contain at least one node")
        if capacity < 1:
            raise ValueError(f"cluster capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.n = n
        self.cost_model = cost_model
        self.topology = topology
        self._node_set = set(self.nodes)
        # Optional fault seam: a FaultInjector (or FaultModel) that
        # perturbs routed patterns; the router heals via ack-and-retry,
        # charging recovery-tagged rows.  None = fault-free, unchanged.
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = faults.injector()
        self.faults: Optional[FaultInjector] = faults

    def route(
        self,
        messages: Mapping[int, Sequence[Tuple[int, Any]]],
        ledger: RoundLedger,
        phase: str,
        words_per_message: int = 1,
    ) -> Dict[int, List[Any]]:
        """Deliver ``messages`` inside the cluster and charge rounds.

        Parameters
        ----------
        messages:
            ``{src: [(dst, payload), ...]}``; both endpoints must be
            cluster members (Theorem 2.4 only uses cluster edges).
        ledger / phase:
            Where to charge.
        words_per_message:
            Uniform message size in words (an edge payload is 2).

        Returns
        -------
        ``{dst: [payloads in arrival order]}``.
        """
        send_load: Dict[int, int] = {v: 0 for v in self.nodes}
        recv_load: Dict[int, int] = {v: 0 for v in self.nodes}
        flat_src: List[int] = []
        flat_dst: List[int] = []
        flat_payload: List[Any] = []
        for src, batch in messages.items():
            if src not in self._node_set:
                raise ValueError(f"source {src} is not a member of the cluster")
            for dst, payload in batch:
                if dst not in self._node_set:
                    raise ValueError(f"destination {dst} is not in the cluster")
                send_load[src] += words_per_message
                recv_load[dst] += words_per_message
                flat_src.append(src)
                flat_dst.append(dst)
                flat_payload.append(payload)
        rounds = self.rounds_for_load(send_load, recv_load)
        makespan, overlay_stats = makespan_charge(
            self.topology,
            self.n,
            np.asarray(flat_src, dtype=np.int64),
            np.asarray(flat_dst, dtype=np.int64),
            words_per_message,
            rounds,
        )
        ledger.charge(
            phase,
            rounds,
            makespan=makespan,
            cluster_size=len(self.nodes),
            capacity=self.capacity,
            messages=len(flat_payload),
            max_send_words=max(send_load.values(), default=0),
            max_recv_words=max(recv_load.values(), default=0),
            **overlay_stats,
        )
        silent = self._heal(ledger, phase, flat_src, flat_dst, words_per_message)
        delivered: Dict[int, List[Any]] = {v: [] for v in self.nodes}
        for i, (dst, payload) in enumerate(zip(flat_dst, flat_payload)):
            if silent is not None and silent[i]:
                payload = mangle_payload(payload, self.n)
            delivered[dst].append(payload)
        return delivered

    def route_batch(
        self, batch: MessageBatch, ledger: RoundLedger, phase: str
    ) -> DeliveredBatch:
        """Columnar twin of :meth:`route` (Theorem 2.4, batch plane).

        Membership checks, load accounting and delivery are all array
        operations; the ledger charge (rounds *and* stats) is bit-
        identical to what :meth:`route` records for the same pattern.
        Mailboxes of non-members stay empty by construction, so the
        returned :class:`DeliveredBatch` is indexed by global node id
        exactly like the tuple plane's ``{dst: payloads}`` dict.
        """
        silent = self._charge_and_heal(batch, ledger, phase)
        if silent is not None and silent.any():
            batch = corrupt_batch(batch, silent, self.n)
        return deliver(batch, self._member_space())

    def charge_batch(
        self, batch: MessageBatch, ledger: RoundLedger, phase: str
    ) -> None:
        """Validate and charge a batch pattern without central delivery —
        the Theorem 2.4 twin of
        :meth:`~repro.congest.congested_clique.CongestedClique.charge_batch`,
        for phases whose mailbox fill is sharded worker-side on the
        parallel plane.  Rounds and stats are bit-identical to
        :meth:`route_batch` for the same pattern.
        """
        self._charge_and_heal(batch, ledger, phase)

    def _charge_and_heal(
        self, batch: MessageBatch, ledger: RoundLedger, phase: str
    ) -> Optional[np.ndarray]:
        """Validate + charge a batch, then run the healing loop.

        The primary charge always reflects the intended pattern; the
        fault seam only appends recovery-tagged rows after it.  Returns
        the silent-corruption mask (None without a seam).
        """
        members = np.asarray(self.nodes, dtype=np.int64)
        if len(batch):
            if not bool(np.isin(batch.src, members).all()):
                raise ValueError("a batch source is not a member of the cluster")
            if not bool(np.isin(batch.dst, members).all()):
                raise ValueError("a batch destination is not in the cluster")
        send_load, recv_load = bincount_loads(
            batch.src, batch.dst, self._member_space(), batch.words_per_message
        )
        max_send = int(send_load.max(initial=0))
        max_recv = int(recv_load.max(initial=0))
        rounds = self.rounds_for_load({0: max_send}, {0: max_recv})
        makespan, overlay_stats = makespan_charge(
            self.topology,
            self.n,
            batch.src,
            batch.dst,
            batch.words_per_message,
            rounds,
        )
        ledger.charge(
            phase,
            rounds,
            makespan=makespan,
            cluster_size=len(self.nodes),
            capacity=self.capacity,
            messages=len(batch),
            max_send_words=max_send,
            max_recv_words=max_recv,
            **overlay_stats,
        )
        return self._heal(
            ledger, phase, batch.src, batch.dst, batch.words_per_message
        )

    def _heal(
        self,
        ledger: RoundLedger,
        phase: str,
        src: Any,
        dst: Any,
        words_per_message: int,
    ) -> Optional[np.ndarray]:
        """Ack-and-retry loop for one routed pattern (no-op sans seam)."""
        if self.faults is None or not self.faults.active:
            return None
        return heal_pattern(
            self.faults,
            ledger,
            phase,
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            space=self._member_space(),
            n=self.n,
            words_per_message=words_per_message,
            retry_rounds=lambda ms, mr: self.rounds_for_load({0: ms}, {0: mr}),
        )

    def _member_space(self) -> int:
        """Delivery index space: mailboxes are indexed by global id."""
        return self.nodes[-1] + 1 if self.nodes else 1

    def rounds_for_load(
        self, send_load: Mapping[int, int], recv_load: Mapping[int, int]
    ) -> float:
        """Theorem 2.4 charge for measured per-node word loads.

        ⌈L / capacity⌉ · slack(n), where L is the max over nodes of
        send/receive words.  Zero load costs zero rounds.
        """
        worst = 0
        if send_load:
            worst = max(worst, max(send_load.values()))
        if recv_load:
            worst = max(worst, max(recv_load.values()))
        if worst == 0:
            return 0.0
        batches = math.ceil(worst / self.capacity)
        return batches * self.cost_model.routing_factor(self.n)

    def charge_for_word_load(
        self, ledger: RoundLedger, phase: str, max_words: int, **stats: Any
    ) -> float:
        """Charge for a routing step whose max per-node load is known.

        Convenience for phases that compute loads themselves (e.g. the
        final "learn edges between my parts" step, where the receive load
        is the number of edges between assigned parts).
        """
        rounds = self.rounds_for_load({0: max_words}, {})
        # No per-message pattern is available here: the caller only
        # reports an aggregate load, so the makespan is the uniform
        # charge rescaled by the topology's link costs.
        makespan = makespan_for_rounds(self.topology, rounds)
        ledger.charge(
            phase,
            rounds,
            makespan=makespan,
            cluster_size=len(self.nodes),
            capacity=self.capacity,
            max_words=max_words,
            **stats,
        )
        return rounds
