"""Node program API for the faithful CONGEST engine.

Algorithms for :class:`~repro.congest.network.Network` are written as
:class:`NodeProgram` subclasses.  The engine instantiates one program per
node and drives them in synchronous rounds:

1. ``on_start(ctx)`` — round 0 setup; may already send.
2. each round: ``on_round(ctx, inbox)`` with the messages delivered this
   round (messages sent in round r arrive in round r+1, subject to the
   per-edge bandwidth — excess queues on the link).
3. a program calls ``ctx.halt()`` when locally done; the engine stops when
   every program has halted and all link queues are drained.

The context exposes exactly what a CONGEST node knows: its identifier, its
neighbor list, ``n``, and a send primitive restricted to neighbors.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set

from repro.congest.errors import UnknownRecipientError
from repro.congest.message import Message, payload_words


class Context:
    """Per-node handle given to programs by the engine."""

    def __init__(self, node: int, n: int, neighbors: Set[int]) -> None:
        self._node = node
        self._n = n
        self._neighbors = neighbors
        self._outbox: List[Message] = []
        self._halted = False
        self.round: int = 0

    @property
    def node(self) -> int:
        """This node's identifier."""
        return self._node

    @property
    def n(self) -> int:
        """Number of nodes in the network (global knowledge in CONGEST)."""
        return self._n

    @property
    def neighbors(self) -> Set[int]:
        """Identifiers of adjacent nodes."""
        return self._neighbors

    def send(self, dst: int, payload: Any, words: int = 0) -> None:
        """Queue a message to neighbor ``dst``.

        ``words`` defaults to the automatic estimate of
        :func:`~repro.congest.message.payload_words`.
        """
        if dst not in self._neighbors:
            raise UnknownRecipientError(
                f"node {self._node} tried to message non-neighbor {dst}"
            )
        size = words if words > 0 else payload_words(payload)
        self._outbox.append(Message(self._node, dst, payload, size))

    def broadcast(self, payload: Any, words: int = 0) -> None:
        """Send the same payload to every neighbor."""
        for dst in self._neighbors:
            self.send(dst, payload, words)

    def halt(self) -> None:
        """Mark this node's program as locally finished."""
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted

    def _drain_outbox(self) -> List[Message]:
        out, self._outbox = self._outbox, []
        return out


class NodeProgram:
    """Base class for node-local algorithms on the faithful engine."""

    def on_start(self, ctx: Context) -> None:
        """Called once before round 1; may send initial messages."""

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        """Called every round with the messages delivered this round.

        Subclasses must eventually call ``ctx.halt()``.
        """
        raise NotImplementedError
