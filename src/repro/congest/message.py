"""Message envelope with word-size accounting.

In the CONGEST model a message is O(log n) bits.  We measure message sizes
in *words*, where one word is one O(log n)-bit unit — enough for a node
identifier, an edge endpoint, or a small tagged value.  An edge, being two
identifiers, is two words; the faithful engine and the charged primitives
both count words, so "send an edge" costs exactly what the paper charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

import numpy as np


def payload_words(payload: Any) -> int:
    """Default word-size estimate for a payload.

    Tuples/lists cost one word per atomic element (recursively); anything
    atomic (ints — numpy scalars included — and small strings used as
    tags) costs one word.  A numpy array counts one word per element,
    matching the tuple it stands in for on the batch plane.  Algorithms
    that know better can pass ``words=`` explicitly when sending.
    """
    if isinstance(payload, (tuple, list)):
        return sum(payload_words(item) for item in payload)
    if isinstance(payload, (set, frozenset)):
        return sum(payload_words(item) for item in payload)
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    return 1


@dataclass(frozen=True)
class Message:
    """A single directed message.

    Attributes
    ----------
    src, dst:
        Endpoint node identifiers.
    payload:
        Arbitrary Python object carried by the message.
    words:
        Size in O(log n)-bit words; used for bandwidth enforcement.
    """

    src: int
    dst: int
    payload: Any
    words: int = 1

    def __post_init__(self) -> None:
        # Normalize numpy integer scalars at the envelope boundary: a
        # batch-plane uint32 endpoint must weigh and compare exactly like
        # the python int it denotes (frozen dataclass => object.__setattr__).
        object.__setattr__(self, "src", _as_int(self.src, "src"))
        object.__setattr__(self, "dst", _as_int(self.dst, "dst"))
        object.__setattr__(self, "words", _as_int(self.words, "words"))
        if self.words < 1:
            raise ValueError(f"message must occupy at least 1 word, got {self.words}")

    @classmethod
    def of(cls, src: int, dst: int, payload: Any) -> "Message":
        """Construct with an automatically estimated word size.

        Numpy integer payload elements are normalized to python ints so a
        ``(np.uint32, np.uint32)`` edge from the columnar plane is sized
        (2 words) and compared exactly like its tuple-plane twin.
        """
        return cls(src, dst, _normalize_payload(payload), payload_words(payload))


def _as_int(value: Any, field_name: str) -> int:
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value)
    raise TypeError(f"{field_name} must be an integer, got {type(value).__name__}")


def _normalize_payload(payload: Any) -> Any:
    """Recursively convert numpy integer scalars to python ints."""
    if isinstance(payload, np.integer):
        return int(payload)
    if isinstance(payload, tuple):
        return tuple(_normalize_payload(item) for item in payload)
    if isinstance(payload, list):
        return [_normalize_payload(item) for item in payload]
    return payload
