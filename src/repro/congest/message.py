"""Message envelope with word-size accounting.

In the CONGEST model a message is O(log n) bits.  We measure message sizes
in *words*, where one word is one O(log n)-bit unit — enough for a node
identifier, an edge endpoint, or a small tagged value.  An edge, being two
identifiers, is two words; the faithful engine and the charged primitives
both count words, so "send an edge" costs exactly what the paper charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple


def payload_words(payload: Any) -> int:
    """Default word-size estimate for a payload.

    Tuples/lists cost one word per atomic element (recursively); anything
    atomic (ints, small strings used as tags) costs one word.  Algorithms
    that know better can pass ``words=`` explicitly when sending.
    """
    if isinstance(payload, (tuple, list)):
        return sum(payload_words(item) for item in payload)
    if isinstance(payload, (set, frozenset)):
        return sum(payload_words(item) for item in payload)
    return 1


@dataclass(frozen=True)
class Message:
    """A single directed message.

    Attributes
    ----------
    src, dst:
        Endpoint node identifiers.
    payload:
        Arbitrary Python object carried by the message.
    words:
        Size in O(log n)-bit words; used for bandwidth enforcement.
    """

    src: int
    dst: int
    payload: Any
    words: int = 1

    def __post_init__(self) -> None:
        if self.words < 1:
            raise ValueError(f"message must occupy at least 1 word, got {self.words}")

    @classmethod
    def of(cls, src: int, dst: int, payload: Any) -> "Message":
        """Construct with an automatically estimated word size."""
        return cls(src, dst, payload, payload_words(payload))
