"""Faithful store-and-forward routing inside a cluster.

Theorem 2.4 (Ghaffari–Kuhn–Su / Ghaffari–Li) is charged analytically by
:class:`~repro.congest.routing.ClusterRouter`.  This module provides a
*message-level* router for cross-validation: messages travel hop by hop
along shortest paths, one word per edge per round, with queueing at
intermediate nodes handled by the engine's per-link FIFOs.

Shortest-path next-hop tables are precomputed centrally — routing tables
are an offline artifact in the real theorem too (the random-walk-based
scheme precomputes its embedding); what must be *faithful* is the
bandwidth-constrained execution, which runs on the
:class:`~repro.congest.network.Network` engine.

On an expander cluster with per-node demand ≤ its min degree, the
measured round count comes out O(diameter + congestion) — the polylog
behavior Theorem 2.4 promises — which the tests compare against the
analytic charge.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.graphs.graph import Graph


def bfs_next_hops(graph: Graph, members: Set[int]) -> Dict[int, Dict[int, int]]:
    """next_hop[src][dst] within the induced subgraph on ``members``.

    For every destination, a reverse BFS labels each member with its
    parent toward the destination.  O(k·(k+m)) precomputation.
    """
    tables: Dict[int, Dict[int, int]] = {v: {} for v in members}
    for dst in members:
        # BFS from dst over member-only edges.
        parent: Dict[int, Optional[int]] = {dst: None}
        queue = deque([dst])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v in members and v not in parent:
                    parent[v] = u
                    queue.append(v)
        for v, toward in parent.items():
            if toward is not None:
                tables[v][dst] = toward
    return tables


class StoreAndForward(NodeProgram):
    """Forwards tagged messages toward their destination hop by hop."""

    def __init__(
        self,
        next_hop: Dict[int, int],
        initial: List[Tuple[int, Any]],
        expected_deliveries: int,
    ) -> None:
        self._next_hop = next_hop
        self._initial = initial
        self._expected = expected_deliveries
        self.delivered: List[Any] = []

    def on_start(self, ctx: Context) -> None:
        for dst, payload in self._initial:
            if dst == ctx.node:
                self.delivered.append(payload)
            else:
                ctx.send(self._next_hop[dst], ("route", dst, payload), words=2)
        if len(self.delivered) >= self._expected:
            ctx.halt()

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        for message in inbox:
            _tag, dst, payload = message.payload
            if dst == ctx.node:
                self.delivered.append(payload)
            else:
                ctx.send(self._next_hop[dst], ("route", dst, payload), words=2)
        if len(self.delivered) >= self._expected:
            ctx.halt()


def run_cluster_routing(
    graph: Graph,
    members: Set[int],
    demands: Dict[int, List[Tuple[int, Any]]],
    bandwidth: int = 1,
) -> Tuple[Dict[int, List[Any]], int]:
    """Execute a routing instance faithfully; return (delivered, rounds).

    Parameters
    ----------
    graph / members:
        The cluster (must induce a connected subgraph).
    demands:
        ``{src: [(dst, payload), ...]}`` with both endpoints members.
    bandwidth:
        Words per directed edge per round (1 = CONGEST).
    """
    tables = bfs_next_hops(graph, members)
    for src in demands:
        if src not in members:
            raise ValueError(f"demand source {src} is not a cluster member")
    expected: Dict[int, int] = {v: 0 for v in members}
    for src, batch in demands.items():
        for dst, _payload in batch:
            if dst not in members:
                raise ValueError(f"demand destination {dst} is not a member")
            expected[dst] += 1
    programs = {
        v: StoreAndForward(tables[v], list(demands.get(v, [])), expected[v])
        for v in members
    }
    network = Network(graph.subgraph_nodes(members), programs, bandwidth=bandwidth)
    rounds = network.run()
    delivered = {v: programs[v].delivered for v in members}
    return delivered, rounds
