"""CONGEST and CONGESTED CLIQUE model substrate.

Two execution fidelities, both producing round counts (see DESIGN.md §4):

- :mod:`~repro.congest.network` — a *faithful* synchronous message-passing
  engine: node programs exchange real messages, and each edge carries at
  most ``bandwidth`` O(log n)-bit words per direction per round.  Used for
  simple phases and for validating the charged primitives.
- :mod:`~repro.congest.routing` / :mod:`~repro.congest.congested_clique` —
  *charged primitives*: the black-box routines the paper invokes
  (Theorem 2.4 intra-cluster routing, Lenzen routing in the congested
  clique) are simulated by moving data directly and charging the round
  cost the corresponding theorem proves, driven by the *measured* loads.

All round charges land in a :class:`~repro.congest.ledger.RoundLedger`,
which keeps one named entry per algorithm phase so that benchmark output
decomposes total cost exactly the way the paper's analysis does.

The charged primitives run on one of two *routing planes*
(:mod:`~repro.congest.batch`): the ``object`` plane moves per-message
Python tuples through dict mailboxes, the ``batch`` plane moves columnar
numpy arrays — identical ledger charges, very different wall-clock.
"""

from repro.congest.batch import (
    DeliveredBatch,
    MessageBatch,
    bincount_loads,
    deliver,
    fanout_edges_by_pair,
)
from repro.congest.errors import (
    BandwidthExceededError,
    CorruptionDetectedError,
    FaultError,
    ModelViolationError,
    RetryBudgetExceededError,
    SimulationLimitError,
)
from repro.congest.ledger import Phase, RoundLedger
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.routing import ClusterRouter, CostModel, broadcast_rounds
from repro.congest.congested_clique import CongestedClique
from repro.congest.topology import (
    DEFAULT_TOPOLOGY,
    TOPOLOGY_KINDS,
    LinkCharge,
    Topology,
    makespan_charge,
    parse_topology,
)

__all__ = [
    "DeliveredBatch",
    "MessageBatch",
    "bincount_loads",
    "deliver",
    "fanout_edges_by_pair",
    "BandwidthExceededError",
    "CorruptionDetectedError",
    "FaultError",
    "ModelViolationError",
    "RetryBudgetExceededError",
    "SimulationLimitError",
    "Phase",
    "RoundLedger",
    "Message",
    "Network",
    "Context",
    "NodeProgram",
    "ClusterRouter",
    "CostModel",
    "broadcast_rounds",
    "CongestedClique",
    "DEFAULT_TOPOLOGY",
    "TOPOLOGY_KINDS",
    "LinkCharge",
    "Topology",
    "makespan_charge",
    "parse_topology",
]
