"""Faithful synchronous CONGEST engine.

This engine executes :class:`~repro.congest.node.NodeProgram` instances on
a communication graph, enforcing the CONGEST constraint *mechanically*: a
directed link ``u -> v`` transmits at most ``bandwidth`` words per round;
anything beyond that waits in the link's FIFO queue and consumes further
rounds.  The resulting round count is therefore an *execution*, not an
estimate — it is used both to run simple algorithm phases and to validate
the charged-primitive cost model on small instances.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.congest.errors import BandwidthExceededError, SimulationLimitError
from repro.congest.ledger import RoundLedger
from repro.congest.message import Message
from repro.congest.node import Context, NodeProgram
from repro.graphs.graph import Graph


class Network:
    """Synchronous message-passing network over a communication graph.

    Parameters
    ----------
    graph:
        The communication graph (in CONGEST the input graph *is* the
        network).
    programs:
        One program per node; dict keyed by node id.  Missing nodes get a
        trivially halting program.
    bandwidth:
        Words per directed link per round (1 = classic CONGEST with one
        O(log n)-bit message per edge direction per round).
    max_rounds:
        Safety limit; exceeding it raises
        :class:`~repro.congest.errors.SimulationLimitError`.
    """

    def __init__(
        self,
        graph: Graph,
        programs: Dict[int, NodeProgram],
        bandwidth: int = 1,
        max_rounds: int = 1_000_000,
    ) -> None:
        if bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {bandwidth}")
        self._graph = graph
        self._bandwidth = bandwidth
        self._max_rounds = max_rounds
        self._programs: Dict[int, NodeProgram] = {}
        self._contexts: Dict[int, Context] = {}
        for v in graph.nodes():
            program = programs.get(v)
            if program is None:
                program = _HaltImmediately()
            self._programs[v] = program
            self._contexts[v] = Context(v, graph.num_nodes, set(graph.neighbors(v)))
        # Per directed link FIFO of messages awaiting transmission.
        self._links: Dict[Tuple[int, int], Deque[Message]] = {}
        # Words of the head-of-line message already transmitted (messages
        # wider than the per-round budget take multiple rounds).
        self._head_progress: Dict[Tuple[int, int], int] = {}
        self.rounds_executed = 0
        self.messages_delivered = 0
        self.words_delivered = 0

    # ------------------------------------------------------------------
    def run(self, ledger: Optional[RoundLedger] = None, phase: str = "network") -> int:
        """Execute until all programs halt and links drain; return rounds.

        If ``ledger`` is given, the total is charged there under ``phase``
        with delivery statistics.
        """
        for v, program in self._programs.items():
            program.on_start(self._contexts[v])
        self._collect_outboxes()

        while not self._finished():
            self.rounds_executed += 1
            if self.rounds_executed > self._max_rounds:
                raise SimulationLimitError(
                    f"simulation exceeded {self._max_rounds} rounds"
                )
            delivered = self._transmit_one_round()
            inboxes: Dict[int, List[Message]] = {}
            for message in delivered:
                inboxes.setdefault(message.dst, []).append(message)
            for v, program in self._programs.items():
                ctx = self._contexts[v]
                ctx.round = self.rounds_executed
                if ctx.halted and v not in inboxes:
                    continue
                if ctx.halted:
                    # A halted program woken by late messages gets to see
                    # them (needed for request/response protocols where
                    # responders halt opportunistically).
                    ctx._halted = False
                program.on_round(ctx, inboxes.get(v, []))
            self._collect_outboxes()

        if ledger is not None:
            ledger.charge(
                phase,
                self.rounds_executed,
                messages=self.messages_delivered,
                words=self.words_delivered,
            )
        return self.rounds_executed

    # ------------------------------------------------------------------
    def _collect_outboxes(self) -> None:
        for v, ctx in self._contexts.items():
            for message in ctx._drain_outbox():
                if message.words > 2 * self._bandwidth and message.words > 4:
                    # A single logical message may occupy a couple of
                    # words (an edge is two identifiers); anything larger
                    # must be split by the program itself.
                    raise BandwidthExceededError(
                        f"message of {message.words} words from {message.src} "
                        f"to {message.dst} cannot fit the word budget; split it"
                    )
                link = (message.src, message.dst)
                self._links.setdefault(link, deque()).append(message)

    def _transmit_one_round(self) -> List[Message]:
        delivered: List[Message] = []
        for link, queue in self._links.items():
            budget = self._bandwidth
            while queue and budget > 0:
                head = queue[0]
                remaining = head.words - self._head_progress.get(link, 0)
                if remaining <= budget:
                    # Head message completes this round.
                    queue.popleft()
                    self._head_progress.pop(link, None)
                    budget -= remaining
                    delivered.append(head)
                else:
                    # Partial transmission: the wide message occupies the
                    # rest of this round's budget and continues next round.
                    self._head_progress[link] = (
                        self._head_progress.get(link, 0) + budget
                    )
                    budget = 0
        self.messages_delivered += len(delivered)
        self.words_delivered += sum(m.words for m in delivered)
        return delivered

    def _finished(self) -> bool:
        if any(queue for queue in self._links.values()):
            return False
        return all(ctx.halted for ctx in self._contexts.values())

    # ------------------------------------------------------------------
    def context(self, v: int) -> Context:
        """The context of node ``v`` (for post-run inspection)."""
        return self._contexts[v]

    def program(self, v: int) -> NodeProgram:
        """The program of node ``v`` (for post-run output collection)."""
        return self._programs[v]


class _HaltImmediately(NodeProgram):
    """Placeholder program for nodes with no role in an algorithm."""

    def on_start(self, ctx: Context) -> None:
        ctx.halt()

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        ctx.halt()
