"""Faithful node programs for the protocol building blocks.

These are message-level implementations (on the
:class:`~repro.congest.network.Network` engine) of the primitive protocol
steps the listing algorithm charges analytically:

- :class:`ClusterAnnounce` — §2.4.1 step 1: cluster members announce
  their cluster ID; outside nodes count g_{v,C} and classify themselves
  heavy/light (2 rounds).
- :class:`OutEdgeBroadcast` — the final stage of Theorem 1.1 and the
  orientation-broadcast baseline: every node ships its oriented out-edges
  to all neighbors (2·max-out-degree rounds).
- :class:`TokenFlood` — connectivity/diameter probe used in tests.

They serve two purposes: executable documentation of what the charged
primitives abstract, and *cross-validation* — the test suite runs both
the faithful program and the analytic charge on the same graph and
asserts the round counts agree (see tests/test_cost_model_validation.py).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.graphs.graph import Graph
from repro.graphs.orientation import Orientation


class ClusterAnnounce(NodeProgram):
    """§2.4.1 classification protocol, message-faithful.

    Round 1: members broadcast ``("cluster", id)``.  Round 2: outside
    nodes that heard announcements tally g_{v,C} per cluster and record
    their classification; everyone halts.
    """

    def __init__(
        self, cluster_of: Dict[int, int], heavy_threshold: int
    ) -> None:
        self._cluster_of = cluster_of
        self._threshold = heavy_threshold
        self.cluster_degree: Dict[int, int] = {}
        self.is_heavy: Dict[int, bool] = {}

    def on_start(self, ctx: Context) -> None:
        cluster = self._cluster_of.get(ctx.node)
        if cluster is not None:
            ctx.broadcast(("cluster", cluster))
        if self._cluster_of.get(ctx.node) is not None:
            ctx.halt()

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        for message in inbox:
            tag, cluster = message.payload
            if tag == "cluster" and self._cluster_of.get(ctx.node) != cluster:
                self.cluster_degree[cluster] = self.cluster_degree.get(cluster, 0) + 1
        for cluster, degree in self.cluster_degree.items():
            self.is_heavy[cluster] = degree > self._threshold
        ctx.halt()


class OutEdgeBroadcast(NodeProgram):
    """Every node sends its oriented out-edges to every neighbor.

    After termination, ``known_edges`` at each node contains its incident
    edges plus all out-edges of its neighbors — enough to list every
    clique through the node (each clique edge leaves one of its two
    endpoints, both of which are the node's neighbors).
    """

    def __init__(self, orientation: Orientation) -> None:
        self._orientation = orientation
        self.known_edges: Set[Tuple[int, int]] = set()
        self._to_send: List[Tuple[int, int]] = []
        self._expected: Dict[int, int] = {}
        self._received: Dict[int, int] = {}

    def on_start(self, ctx: Context) -> None:
        out = sorted(self._orientation.out_neighbors(ctx.node))
        self._to_send = [(ctx.node, w) for w in out]
        for v in ctx.neighbors:
            self.known_edges.add((min(ctx.node, v), max(ctx.node, v)))
        # Announce how many edge messages each neighbor should expect.
        ctx.broadcast(("count", len(self._to_send)))
        for edge in self._to_send:
            ctx.broadcast(("edge", edge), words=2)

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        for message in inbox:
            tag, payload = message.payload
            if tag == "count":
                self._expected[message.src] = payload
            else:
                u, w = payload
                self.known_edges.add((min(u, w), max(u, w)))
                self._received[message.src] = self._received.get(message.src, 0) + 1
        done = all(
            self._received.get(v, 0) >= self._expected.get(v, 0)
            for v in ctx.neighbors
            if v in self._expected
        ) and len(self._expected) == len(ctx.neighbors)
        if done:
            ctx.halt()


class TokenFlood(NodeProgram):
    """Flood a token from a source; ``distance`` ≈ arrival round."""

    def __init__(self, source: int) -> None:
        self._source = source
        self.heard = False
        self.arrival_round: Optional[int] = None

    def on_start(self, ctx: Context) -> None:
        if ctx.node == self._source:
            self.heard = True
            self.arrival_round = 0
            ctx.broadcast("token")
            ctx.halt()

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        if inbox and not self.heard:
            self.heard = True
            self.arrival_round = ctx.round
            ctx.broadcast("token")
        ctx.halt()


def run_out_edge_broadcast(
    graph: Graph, orientation: Orientation, bandwidth: int = 1
) -> Tuple[Dict[int, Set[Tuple[int, int]]], int]:
    """Execute :class:`OutEdgeBroadcast` faithfully; return knowledge + rounds."""
    programs = {v: OutEdgeBroadcast(orientation) for v in graph.nodes()}
    network = Network(graph, programs, bandwidth=bandwidth)
    rounds = network.run()
    knowledge = {v: programs[v].known_edges for v in graph.nodes()}
    return knowledge, rounds


def run_cluster_announce(
    graph: Graph, cluster_of: Dict[int, int], heavy_threshold: int
) -> Tuple[Dict[int, Dict[int, int]], int]:
    """Execute :class:`ClusterAnnounce`; return per-node g_{v,C} maps + rounds."""
    programs = {
        v: ClusterAnnounce(cluster_of, heavy_threshold) for v in graph.nodes()
    }
    network = Network(graph, programs)
    rounds = network.run()
    degrees = {v: programs[v].cluster_degree for v in graph.nodes()}
    return degrees, rounds
