"""Round accounting: the ledger every algorithm writes its cost into.

The paper's round-complexity proofs decompose into named phases
("expander decomposition", "learning outside edges", "reshuffling",
"listing by learning graph edges", ...).  The :class:`RoundLedger` mirrors
that structure: every phase of every algorithm charges its rounds under a
name, together with the measured loads that justify the charge.  Benchmark
output then reports both the total and the per-phase breakdown, which is
what EXPERIMENTS.md compares against the paper's terms
(n^{3/4} vs n^{p/(p+2)} etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Phase:
    """One charged phase of an algorithm run.

    Attributes
    ----------
    name:
        Phase label, e.g. ``"arb_list/gather_heavy"``.
    rounds:
        Rounds charged for the phase (non-negative).
    stats:
        Free-form measured quantities backing the charge (max load,
        message totals, cluster count, ...), kept for the benchmark
        reports.
    recovery:
        True for charges created by the fault-recovery protocol
        (retransmissions, straggler stalls).  Recovery rounds are honest
        cost — they count toward :attr:`RoundLedger.total_rounds` — but
        stay distinguishable so fault-differential tests can compare the
        delivery rows of a faulted run against a fault-free one.
    makespan:
        Topology-aware completion time of the phase (bottleneck-link
        words ÷ bandwidth plus hop latency along overlay routes — see
        ``repro.congest.topology``).  ``None`` means the charger did not
        compute one, in which case the uniform ``rounds`` stand in; on
        the default clique topology the two are numerically identical,
        so clique ledgers stay byte-identical to pre-topology runs.
    """

    name: str
    rounds: float
    stats: Dict[str, Any] = field(default_factory=dict)
    recovery: bool = False
    makespan: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError(f"phase {self.name!r} has negative rounds {self.rounds}")
        if self.makespan is not None and self.makespan < 0:
            raise ValueError(
                f"phase {self.name!r} has negative makespan {self.makespan}"
            )

    @property
    def effective_makespan(self) -> float:
        """The phase's completion time: its makespan, else its rounds."""
        return self.rounds if self.makespan is None else self.makespan


class RoundLedger:
    """Accumulates :class:`Phase` charges for one algorithm execution."""

    def __init__(self) -> None:
        self._phases: List[Phase] = []

    def charge(
        self,
        name: str,
        rounds: float,
        *,
        makespan: Optional[float] = None,
        **stats: Any,
    ) -> Phase:
        """Record a phase charge and return the created :class:`Phase`.

        ``makespan`` is the optional topology-aware completion time; when
        omitted the phase falls back to its uniform ``rounds`` (see
        :attr:`Phase.effective_makespan`).
        """
        phase = Phase(name, float(rounds), dict(stats), makespan=makespan)
        self._phases.append(phase)
        return phase

    def charge_recovery(
        self,
        name: str,
        rounds: float,
        *,
        makespan: Optional[float] = None,
        **stats: Any,
    ) -> Phase:
        """Record a fault-recovery charge (a :class:`Phase` with the
        ``recovery`` flag set).  Recovery rounds are real cost, charged
        honestly; the flag only keeps them separable from delivery rows."""
        phase = Phase(
            name, float(rounds), dict(stats), recovery=True, makespan=makespan
        )
        self._phases.append(phase)
        return phase

    def extend(self, other: "RoundLedger", prefix: str = "") -> None:
        """Absorb another ledger's phases, optionally prefixing names.

        Sub-algorithms (e.g. one ARB-LIST invocation inside LIST) run with
        their own ledger, which the caller then folds in under a prefix
        like ``"list[3]/"``.
        """
        for phase in other.phases():
            self._phases.append(
                Phase(
                    prefix + phase.name,
                    phase.rounds,
                    dict(phase.stats),
                    recovery=phase.recovery,
                    makespan=phase.makespan,
                )
            )

    def phases(self) -> List[Phase]:
        """All recorded phases, in charge order."""
        return list(self._phases)

    def delivery_phases(self) -> List[Phase]:
        """Phases excluding fault-recovery charges — a faulted run's
        delivery rows must equal the fault-free run's :meth:`phases`."""
        return [p for p in self._phases if not p.recovery]

    @property
    def recovery_rounds(self) -> float:
        """Total rounds charged by the fault-recovery protocol."""
        return sum(p.rounds for p in self._phases if p.recovery)

    @property
    def total_rounds(self) -> float:
        """Sum of all phase charges."""
        return sum(phase.rounds for phase in self._phases)

    @property
    def total_makespan(self) -> float:
        """Sum of topology-aware phase completion times.

        Phases charged without a makespan contribute their uniform
        rounds, so on the default clique topology this equals
        :attr:`total_rounds` exactly.
        """
        return sum(phase.effective_makespan for phase in self._phases)

    def rounds_by_prefix(self, prefix: str) -> float:
        """Total rounds of phases whose name starts with ``prefix``."""
        return sum(p.rounds for p in self._phases if p.name.startswith(prefix))

    def grouped(self) -> Dict[str, float]:
        """Rounds aggregated by the first ``/``-separated name component."""
        groups: Dict[str, float] = {}
        for phase in self._phases:
            key = phase.name.split("/", 1)[0]
            groups[key] = groups.get(key, 0.0) + phase.rounds
        return groups

    def max_stat(self, key: str) -> Optional[float]:
        """Maximum of a named stat across phases that report it."""
        values = [p.stats[key] for p in self._phases if key in p.stats]
        return max(values) if values else None

    def summary(self) -> str:
        """Human-readable multi-line breakdown (used by examples)."""
        lines = [f"total rounds: {self.total_rounds:.1f}"]
        for phase in self._phases:
            stat_str = ", ".join(f"{k}={v}" for k, v in sorted(phase.stats.items()))
            suffix = f"  [{stat_str}]" if stat_str else ""
            lines.append(f"  {phase.name}: {phase.rounds:.1f}{suffix}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self._phases)

    def __repr__(self) -> str:
        return f"RoundLedger(phases={len(self._phases)}, total={self.total_rounds:.1f})"
