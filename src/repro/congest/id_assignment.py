"""Faithful intra-cluster ID assignment (Lemma 2.5).

The listing pipeline charges Lemma 2.5 analytically (O(polylog n) rounds
to give every cluster fresh IDs 1..k).  This module implements the
protocol at message level on the faithful engine, as executable
documentation and for cross-validation:

1. the minimum-ID member becomes the root (here: known upfront, as the
   cluster ID protocol of Theorem 2.3 provides a cluster leader);
2. a BFS tree is grown from the root (O(cluster diameter) rounds —
   polylog for expander clusters, since diameter ≤ mixing time);
3. a convergecast computes subtree sizes;
4. a downcast assigns contiguous ID ranges per subtree, giving each
   member a unique new ID in [1, k].

Total: O(diameter) rounds, each message one O(log n)-bit word.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.graphs.graph import Graph


class IdAssignment(NodeProgram):
    """BFS-tree based new-ID assignment within one cluster.

    Nodes outside the cluster run the default halting program; cluster
    members run this.  After termination, ``new_id`` holds the member's
    ID in [1, k].
    """

    def __init__(self, root: int, members: Set[int]) -> None:
        self._root = root
        self._members = members
        self.parent: Optional[int] = None
        self.children: Set[int] = set()
        self.depth: Optional[int] = None
        self.subtree_size: Optional[int] = None
        self.new_id: Optional[int] = None
        self._pending_children: Set[int] = set()
        self._child_sizes: Dict[int, int] = {}
        self._claimed: Set[int] = set()
        self._range_assigned = False

    # -- helpers -------------------------------------------------------
    def _cluster_neighbors(self, ctx: Context) -> Set[int]:
        return {v for v in ctx.neighbors if v in self._members}

    def on_start(self, ctx: Context) -> None:
        if ctx.node == self._root:
            self.depth = 0
            for v in self._cluster_neighbors(ctx):
                ctx.send(v, ("bfs", 0))
                self._pending_children.add(v)
            if not self._pending_children:
                self.subtree_size = 1
                self.new_id = 1
                ctx.halt()

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        for message in inbox:
            tag = message.payload[0]
            if tag == "bfs":
                self._on_bfs(ctx, message)
            elif tag == "accept":
                self.children.add(message.src)
            elif tag == "reject":
                self._pending_children.discard(message.src)
            elif tag == "size":
                self._child_sizes[message.src] = message.payload[1]
            elif tag == "range":
                self._on_range(ctx, message.payload[1], message.payload[2])
        self._maybe_report_size(ctx)

    def _on_bfs(self, ctx: Context, message: Message) -> None:
        depth = message.payload[1]
        if self.depth is None and ctx.node != self._root:
            self.depth = depth + 1
            self.parent = message.src
            ctx.send(message.src, ("accept",))
            for v in self._cluster_neighbors(ctx):
                if v != message.src:
                    ctx.send(v, ("bfs", self.depth))
                    self._pending_children.add(v)
        elif message.src != self.parent:
            ctx.send(message.src, ("reject",))

    def _maybe_report_size(self, ctx: Context) -> None:
        if self.subtree_size is not None or self.depth is None:
            return
        # All pending children have either accepted (and reported a size)
        # or rejected.
        unresolved = {
            v
            for v in self._pending_children
            if v not in self._child_sizes and v not in self.children
        }
        waiting_sizes = {v for v in self.children if v not in self._child_sizes}
        if unresolved or waiting_sizes:
            return
        self.subtree_size = 1 + sum(self._child_sizes.values())
        if ctx.node == self._root:
            self._assign_ranges(ctx, 1)
        else:
            assert self.parent is not None
            ctx.send(self.parent, ("size", self.subtree_size))

    def _on_range(self, ctx: Context, start: int, end: int) -> None:
        # Receive our subtree's contiguous ID range [start, end].
        self._assign_ranges(ctx, start)

    def _assign_ranges(self, ctx: Context, start: int) -> None:
        if self._range_assigned:
            return
        self._range_assigned = True
        self.new_id = start
        cursor = start + 1
        for child in sorted(self.children):
            size = self._child_sizes[child]
            ctx.send(child, ("range", cursor, cursor + size - 1))
            cursor += size
        ctx.halt()


def run_id_assignment(
    graph: Graph, members: Set[int]
) -> Tuple[Dict[int, int], int]:
    """Run the Lemma 2.5 protocol for one cluster; return (new_ids, rounds).

    ``members`` must induce a connected subgraph of ``graph`` (clusters
    always do, being connected components of Em).
    """
    if not members:
        raise ValueError("cluster must be non-empty")
    root = min(members)
    programs = {v: IdAssignment(root, members) for v in members}
    network = Network(graph.subgraph_nodes(members), programs)
    rounds = network.run()
    new_ids: Dict[int, int] = {}
    for v in members:
        new_id = programs[v].new_id
        if new_id is None:
            raise RuntimeError(f"member {v} did not receive a new ID (disconnected?)")
        new_ids[v] = new_id
    return new_ids, rounds
