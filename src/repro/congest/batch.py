"""Columnar message plane: batched routing as parallel numpy arrays.

The tuple plane (:meth:`CongestedClique.route` / :meth:`ClusterRouter.route`)
moves every message as an individual Python object through dict mailboxes.
That is the right *reference semantics* — one payload, one envelope — but
the Lenzen/Theorem-2.4 fan-outs of the listing algorithms move the same
edge to O(p²·k^{1−2/p}) recipients, and at bench scale that is millions of
tuples.  This module is the fast lane: a message batch is a *column
family* —

- ``src`` / ``dst``  — ``int64`` endpoint columns,
- ``payload``        — a ``(messages, width)`` ``uint32`` matrix for fixed-
  width word payloads (an edge is the ``width == 2`` case),
- ``obj``            — an optional ``object`` column as the escape hatch
  for payloads that do not fit fixed-width words.

Load accounting is one :func:`numpy.bincount` per direction instead of a
per-message ``Counter`` loop, and delivery is one stable argsort on
``dst`` instead of millions of ``list.append`` calls.  The charged rounds
are **identical** to the tuple plane by construction: both planes measure
the same per-node word loads and feed them through the same
``rounds_for_load``; the differential tests in
``tests/test_routing_plane.py`` hold them to it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: The routing planes every plane-aware entry point accepts: ``"batch"``
#: moves columnar arrays on one core, ``"object"`` moves per-message
#: Python tuples (the reference semantics), ``"parallel"`` moves the
#: same columns sharded across a worker-process pool
#: (:mod:`repro.parallel`), ``"dist"`` dispatches the identical shard
#: kernels across cluster nodes (:mod:`repro.dist`).  All planes charge
#: identical ledger rounds.
PLANES = ("batch", "object", "parallel", "dist")

#: The plane every plane-aware entry point resolves ``plane=None`` to.
#: :class:`~repro.core.params.AlgorithmParameters` defaults to it, and
#: cache layers keying on the plane (``QueryEngine.listing_result``, the
#: serve epochs) normalize ``None`` through this constant so the two
#: spellings can never alias into separate entries.
DEFAULT_PLANE = "batch"

#: The planes whose data movement is columnar numpy arrays.
#: ``"parallel"`` is the batch plane with its delivery/listing tail
#: sharded across a local worker pool; ``"dist"`` is the same tail
#: dispatched across cluster nodes — every array-plane code path serves
#: all three, which is why they cannot drift apart.
ARRAY_PLANES = ("batch", "parallel", "dist")


def bincount_loads(
    src: np.ndarray, dst: np.ndarray, n: int, words_per_message: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-node send/receive word loads of a message pattern.

    Equivalent to the tuple plane's per-message ``Counter`` accumulation:
    ``send[v] = words_per_message · #{messages with src == v}`` and the
    mirror image for ``recv`` — one ``np.bincount`` per direction.  Nodes
    that send or receive nothing (including the empty pattern) report 0.
    """
    send = np.bincount(np.asarray(src, dtype=np.int64), minlength=n)
    recv = np.bincount(np.asarray(dst, dtype=np.int64), minlength=n)
    return send * int(words_per_message), recv * int(words_per_message)


@dataclass
class MessageBatch:
    """A batch of directed messages as parallel columns.

    Attributes
    ----------
    src, dst:
        ``int64`` endpoint columns of equal length.
    payload:
        ``(len, width)`` ``uint32`` payload matrix; ``width == 0`` for
        messages with no word payload.  Edge payloads use ``width == 2``
        (the two endpoint identifiers).
    obj:
        Optional ``object`` column for arbitrary payloads (the escape
        hatch keeping the batch plane total over the tuple plane's
        payload space).
    words_per_message:
        Uniform size in O(log n)-bit words, exactly as in the tuple
        plane's ``route(..., words_per_message=...)``.
    """

    src: np.ndarray
    dst: np.ndarray
    payload: np.ndarray
    obj: Optional[np.ndarray] = None
    words_per_message: int = 1

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        self.payload = np.ascontiguousarray(self.payload, dtype=np.uint32)
        if self.payload.ndim != 2:
            raise ValueError("payload must be a 2-D (messages, width) matrix")
        if not (self.src.shape[0] == self.dst.shape[0] == self.payload.shape[0]):
            raise ValueError(
                f"column lengths disagree: src={self.src.shape[0]}, "
                f"dst={self.dst.shape[0]}, payload={self.payload.shape[0]}"
            )
        if self.obj is not None and len(self.obj) != self.src.shape[0]:
            raise ValueError("obj column length disagrees with src")
        if self.words_per_message < 1:
            raise ValueError(
                f"messages occupy at least 1 word, got {self.words_per_message}"
            )

    def __len__(self) -> int:
        return int(self.src.shape[0])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, width: int = 0, words_per_message: int = 1) -> "MessageBatch":
        return cls(
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            payload=np.empty((0, width), dtype=np.uint32),
            words_per_message=words_per_message,
        )

    @classmethod
    def of_edges(
        cls, src: np.ndarray, dst: np.ndarray, endpoints: np.ndarray
    ) -> "MessageBatch":
        """Edge-carrying batch: ``endpoints`` is ``(messages, 2)`` and each
        message costs 2 words — the batch twin of ``Message.of`` on an
        edge payload."""
        endpoints = np.asarray(endpoints)
        if endpoints.ndim != 2 or endpoints.shape[1] != 2:
            raise ValueError(
                f"edge payloads are (messages, 2) matrices, got {endpoints.shape}"
            )
        return cls(src=src, dst=dst, payload=endpoints, words_per_message=2)

    @classmethod
    def from_object_messages(
        cls,
        messages: Mapping[int, Sequence[Tuple[int, Any]]],
        words_per_message: int = 1,
    ) -> "MessageBatch":
        """Columnarize a tuple-plane ``{src: [(dst, payload), ...]}`` map.

        Fixed-width integer-tuple payloads of one common width land in the
        ``payload`` matrix; anything else rides the ``obj`` column.  Used
        by the differential tests to drive both planes from one pattern.
        """
        srcs: List[int] = []
        dsts: List[int] = []
        payloads: List[Any] = []
        for src, batch in messages.items():
            for dst, payload in batch:
                srcs.append(int(src))
                dsts.append(int(dst))
                payloads.append(payload)
        width = _uniform_int_tuple_width(payloads)
        if width is not None:
            matrix = np.asarray(
                [[int(x) for x in p] for p in payloads], dtype=np.uint32
            ).reshape(len(payloads), width)
            obj = None
        else:
            matrix = np.empty((len(payloads), 0), dtype=np.uint32)
            obj = np.empty(len(payloads), dtype=object)
            obj[:] = payloads
        return cls(
            src=np.asarray(srcs, dtype=np.int64),
            dst=np.asarray(dsts, dtype=np.int64),
            payload=matrix,
            obj=obj,
            words_per_message=words_per_message,
        )

    # ------------------------------------------------------------------
    # Accounting and views
    # ------------------------------------------------------------------
    def send_words(self, n: int) -> np.ndarray:
        """Per-node sent words (vectorized ``Counter`` replacement)."""
        return bincount_loads(self.src, self.dst, n, self.words_per_message)[0]

    def recv_words(self, n: int) -> np.ndarray:
        """Per-node received words (vectorized ``Counter`` replacement)."""
        return bincount_loads(self.src, self.dst, n, self.words_per_message)[1]

    def payload_tuples(self) -> List[Any]:
        """Payloads as the tuple plane would carry them (obj wins if set)."""
        if self.obj is not None:
            return list(self.obj)
        return [tuple(row) for row in self.payload.tolist()]

    def to_object_messages(self) -> Dict[int, List[Tuple[int, Any]]]:
        """The tuple-plane view of this batch, for differential testing."""
        payloads = self.payload_tuples()
        messages: Dict[int, List[Tuple[int, Any]]] = {}
        for i, (src, dst) in enumerate(zip(self.src.tolist(), self.dst.tolist())):
            messages.setdefault(src, []).append((dst, payloads[i]))
        return messages


def _uniform_int_tuple_width(payloads: Sequence[Any]) -> Optional[int]:
    """Common tuple-of-uint32 width of the payloads, or ``None``."""
    width: Optional[int] = None
    for payload in payloads:
        if not isinstance(payload, tuple):
            return None
        if width is None:
            width = len(payload)
        elif len(payload) != width:
            return None
        for item in payload:
            if isinstance(item, bool) or not isinstance(item, (int, np.integer)):
                return None
            if not 0 <= int(item) < 2**32:
                return None
    return width


@dataclass
class DeliveredBatch:
    """A routed batch, grouped by destination.

    One stable argsort on ``dst`` orders the columns so that every
    destination's mailbox is a contiguous slice; ``indptr`` is the CSR-
    style boundary array (``indptr[v]:indptr[v+1]`` is node ``v``'s
    slice).  Within a mailbox, messages keep the batch's send order
    (stable sort), mirroring the tuple plane's arrival order per sender.
    """

    n: int
    indptr: np.ndarray
    src: np.ndarray
    payload: np.ndarray
    obj: Optional[np.ndarray] = None

    def payload_rows(self, v: int) -> np.ndarray:
        """Node ``v``'s received payload matrix (``(k, width)`` view)."""
        return self.payload[self.indptr[v] : self.indptr[v + 1]]

    def payloads(self, v: int) -> List[Any]:
        """Node ``v``'s mailbox as the tuple plane would hand it over."""
        lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
        if self.obj is not None:
            return list(self.obj[lo:hi])
        return [tuple(row) for row in self.payload[lo:hi].tolist()]

    def nonempty_nodes(self) -> np.ndarray:
        """Destinations with at least one message, ascending."""
        return np.nonzero(np.diff(self.indptr) > 0)[0]


def deliver(batch: MessageBatch, n: int) -> DeliveredBatch:
    """Group a batch by destination — the columnar mailbox fill.

    Zero per-payload Python objects: one stable argsort plus fancy
    indexing reorders every column at once.
    """
    order = np.argsort(batch.dst, kind="stable")
    dst_sorted = batch.dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(dst_sorted, minlength=n), out=indptr[1:])
    return DeliveredBatch(
        n=n,
        indptr=indptr,
        src=batch.src[order],
        payload=batch.payload[order],
        obj=None if batch.obj is None else batch.obj[order],
    )


def fanout_edges_by_pair(
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    pair_of_edge: np.ndarray,
    recipients_of_pair: Sequence[np.ndarray],
) -> MessageBatch:
    """Replicate every edge to all recipients of its part pair, as arrays.

    The §2.4.3 fan-out: edge ``(u, v)`` between part pair ``g`` goes to
    every node whose radix assignment contains both parts — the
    ``recipients_of_pair[g]`` array.  Edges are argsort-grouped by pair so
    each group is one ``np.repeat`` (sources) + ``np.tile`` (recipients);
    no per-message Python objects are created.
    """
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    pair_of_edge = np.asarray(pair_of_edge, dtype=np.int64)
    if not (edge_src.size == edge_dst.size == pair_of_edge.size):
        raise ValueError("edge columns must have equal length")
    if edge_src.size == 0:
        return MessageBatch.empty(width=2, words_per_message=2)

    order = np.argsort(pair_of_edge, kind="stable")
    src_cols: List[np.ndarray] = []
    dst_cols: List[np.ndarray] = []
    pay_cols: List[np.ndarray] = []
    boundaries = np.nonzero(np.diff(pair_of_edge[order]))[0] + 1
    for group in np.split(order, boundaries):
        pair = int(pair_of_edge[group[0]])
        recipients = recipients_of_pair[pair]
        if recipients.size == 0:
            continue
        repeated_src = np.repeat(edge_src[group], recipients.size)
        src_cols.append(repeated_src)
        dst_cols.append(np.tile(recipients, group.size))
        endpoints = np.empty((repeated_src.size, 2), dtype=np.uint32)
        endpoints[:, 0] = repeated_src
        endpoints[:, 1] = np.repeat(edge_dst[group], recipients.size)
        pay_cols.append(endpoints)
    if not src_cols:
        return MessageBatch.empty(width=2, words_per_message=2)
    return MessageBatch.of_edges(
        src=np.concatenate(src_cols),
        dst=np.concatenate(dst_cols),
        endpoints=np.concatenate(pay_cols),
    )
