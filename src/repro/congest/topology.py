"""Overlay network topologies and the makespan cost surface.

The ledger has always charged the *uniform* CONGESTED CLIQUE: every pair
of nodes shares a dedicated unit-bandwidth link, so a routed pattern
costs ``lenzen_slack · ⌈max-node-load / n⌉`` rounds regardless of which
pairs actually talk.  This module parameterizes the network instead: a
frozen :class:`Topology` names an overlay (clique, star, ring, chain,
grid, or a spanner-sparsified hub hierarchy à la Parter–Yogev,
arXiv:1805.05404) together with per-link ``bandwidth`` (words/round)
and ``latency`` (rounds/hop), and every charged primitive reports — in
addition to the unchanged uniform-clique rounds — a topology-aware
**makespan**:

    makespan = ⌈ max-directed-link-words / bandwidth ⌉ + latency · max-hops

Messages route along deterministic shortest overlay routes (star via
the hub, ring along the shorter arc, grid row-first with a column-first
fallback at the ragged edge, spanner up/across/down its hub hierarchy),
and per-link word loads are accumulated with vectorized difference
arrays — no per-message Python loop, so overlay accounting stays cheap
even for the million-row fan-out batches of the batch plane.

The clique is the degenerate overlay: every route is one hop, the
Lenzen schedule already *is* the per-link schedule, so its makespan is
defined as ``rounds / bandwidth + latency`` — byte-identical to the
charged rounds at the default ``bandwidth=1, latency=0``.  The
differential suite in ``tests/test_topology_differential.py`` pins
clique-topology runs to the no-topology runs row for row.

Spanner overlays answer the Parter–Yogev question "how few links can
carry a clique algorithm": a ``k``-level hub hierarchy with branching
``⌈n^{1/k}⌉`` has O(k·n + n^{2/k}) directed links and stretch ≤ 2k−1
over the clique, so a dense pattern that would light up Θ(n²) clique
pairs crosses only O(n) provisioned links (the ``pattern_pairs`` /
``links_used`` ratio the topology benchmark gates on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Overlay kinds every topology-aware entry point accepts.
TOPOLOGY_KINDS = ("clique", "star", "ring", "chain", "grid", "spanner")

#: Source chunk size for the all-pairs broadcast accounting: loads are
#: additive, so the n·(n−1) pattern accumulates in bounded memory.
_BROADCAST_CHUNK = 256


@dataclass(frozen=True)
class Topology:
    """A frozen overlay-network specification.

    Attributes
    ----------
    kind:
        One of :data:`TOPOLOGY_KINDS`.  ``"clique"`` (the default) is
        the uniform all-to-all network the ledger has always charged.
    bandwidth:
        Words one directed overlay link carries per round (> 0).
    latency:
        Rounds one overlay hop adds to a message's journey (>= 0).
    grid_width:
        Columns of the ``"grid"`` overlay (``None`` → ⌈√n⌉ at compile
        time).  Ignored by every other kind.
    spanner_k:
        Stretch parameter of the ``"spanner"`` overlay: a ``k``-level
        hub hierarchy with stretch ≤ 2k−1 and O(k·n + n^{2/k}) links
        (k ≥ 2).  Ignored by every other kind.
    """

    kind: str = "clique"
    bandwidth: float = 1.0
    latency: float = 0.0
    grid_width: Optional[int] = None
    spanner_k: int = 2

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; use one of {TOPOLOGY_KINDS}"
            )
        if not (isinstance(self.bandwidth, (int, float)) and self.bandwidth > 0):
            raise ValueError(
                f"link bandwidth must be a positive number of words/round, "
                f"got {self.bandwidth!r}"
            )
        if not (isinstance(self.latency, (int, float)) and self.latency >= 0):
            raise ValueError(
                f"link latency must be a non-negative number of rounds/hop, "
                f"got {self.latency!r}"
            )
        if self.grid_width is not None and (
            not isinstance(self.grid_width, int) or self.grid_width < 1
        ):
            raise ValueError(
                f"grid_width must be a positive integer or None, got {self.grid_width!r}"
            )
        if not isinstance(self.spanner_k, int) or self.spanner_k < 2:
            raise ValueError(
                f"spanner_k must be an integer >= 2, got {self.spanner_k!r}"
            )

    # ------------------------------------------------------------------
    @property
    def is_clique(self) -> bool:
        return self.kind == "clique"

    def with_(self, **changes) -> "Topology":
        """Functional update (wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

    def spec(self) -> str:
        """The canonical spec string (``parse_topology`` round-trips it)."""
        text = self.kind
        if self.kind == "grid" and self.grid_width is not None:
            text += f":{self.grid_width}"
        elif self.kind == "spanner" and self.spanner_k != 2:
            text += f":{self.spanner_k}"
        extras = []
        if self.bandwidth != 1.0:
            extras.append(f"bw={self.bandwidth:g}")
        if self.latency != 0.0:
            extras.append(f"lat={self.latency:g}")
        if extras:
            text += "@" + ",".join(extras)
        return text

    def compile(self, n: int) -> "CompiledTopology":
        """The routing tables/accumulators for an ``n``-node instance
        (cached per ``(topology, n)``)."""
        return _compile(self, n)


#: The uniform clique every router defaults to (``topology=None``).
DEFAULT_TOPOLOGY = Topology()


def parse_topology(
    spec: str, bandwidth: Optional[float] = None, latency: Optional[float] = None
) -> Topology:
    """Parse an overlay spec string (the CLI / sweep grammar).

    Grammar: ``KIND[:PARAM][@KEY=VALUE[,KEY=VALUE]...]`` where ``KIND``
    is one of :data:`TOPOLOGY_KINDS`, ``PARAM`` is the grid width
    (``grid:8``) or the spanner level count (``spanner:3``), and the
    ``@`` keys are ``bw``/``bandwidth`` and ``lat``/``latency``.  The
    ``bandwidth`` / ``latency`` arguments are defaults the ``@`` keys
    override.

    >>> parse_topology("grid:8@bw=0.5,lat=2").spec()
    'grid:8@bw=0.5,lat=2'
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty topology spec {spec!r}")
    text = spec.strip()
    kw: Dict[str, float] = {}
    if "@" in text:
        text, _, tail = text.partition("@")
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"topology spec {spec!r}: expected KEY=VALUE after '@', got {item!r}"
                )
            key = key.strip()
            if key in ("bw", "bandwidth"):
                field_name = "bandwidth"
            elif key in ("lat", "latency"):
                field_name = "latency"
            else:
                raise ValueError(
                    f"topology spec {spec!r}: unknown key {key!r} "
                    f"(use bw/bandwidth or lat/latency)"
                )
            try:
                kw[field_name] = float(value)
            except ValueError:
                raise ValueError(
                    f"topology spec {spec!r}: {key} expects a number, got {value!r}"
                )
    kind, _, param = text.partition(":")
    kind = kind.strip()
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology kind {kind!r}; use one of {TOPOLOGY_KINDS}"
        )
    fields: Dict[str, object] = dict(kw)
    if bandwidth is not None:
        fields.setdefault("bandwidth", float(bandwidth))
    if latency is not None:
        fields.setdefault("latency", float(latency))
    if param:
        try:
            value = int(param)
        except ValueError:
            raise ValueError(
                f"topology spec {spec!r}: parameter must be an integer, got {param!r}"
            )
        if kind == "grid":
            fields["grid_width"] = value
        elif kind == "spanner":
            fields["spanner_k"] = value
        else:
            raise ValueError(
                f"topology spec {spec!r}: {kind!r} takes no ':' parameter"
            )
    return Topology(kind=kind, **fields)


# ----------------------------------------------------------------------
# Charges
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkCharge:
    """The per-link accounting of one routed pattern on one overlay.

    ``makespan`` is the headline number (bottleneck link time plus hop
    latency along the longest route); the rest back it up: the
    bottleneck load itself, total words crossing links (word·hops), the
    number of distinct directed links that carried traffic, the longest
    route, and the distinct (src, dst) pairs of the pattern — the links
    a direct clique routing would have needed, which is what the
    spanner's bandwidth-reduction gate compares ``links_used`` against.
    """

    makespan: float
    max_link_words: int
    total_link_words: int
    links_used: int
    max_hops: int
    pattern_pairs: int

    def stats(self) -> Dict[str, float]:
        """The ledger-stat dict routers merge into overlay phase rows."""
        return {
            "max_link_words": float(self.max_link_words),
            "link_words": float(self.total_link_words),
            "links_used": float(self.links_used),
            "overlay_hops": float(self.max_hops),
            "pattern_pairs": float(self.pattern_pairs),
        }


def makespan_for_rounds(topology: Optional[Topology], rounds: float) -> float:
    """Clique / aggregate-only makespan: the uniform charge rescaled.

    The Lenzen schedule is already a per-link schedule on the clique
    (every link carries ≈ load/n words), so the makespan of a clique
    phase charged ``rounds`` is ``rounds / bandwidth`` plus one hop of
    latency.  Zero traffic costs zero.  ``None`` means the default
    clique (makespan == rounds exactly).
    """
    if rounds <= 0:
        return 0.0
    if topology is None:
        return float(rounds)
    return rounds / topology.bandwidth + topology.latency


def pattern_pairs(src: np.ndarray, dst: np.ndarray, n: int) -> int:
    """Distinct ordered (src, dst) pairs with src ≠ dst — the directed
    clique links a direct routing of the pattern would occupy."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    mask = src != dst
    if not mask.any():
        return 0
    return int(np.unique(src[mask] * n + dst[mask]).size)


# ----------------------------------------------------------------------
# Compiled overlays
# ----------------------------------------------------------------------
class CompiledTopology:
    """Routing tables + load accumulators for one overlay instance.

    Subclasses implement the three accumulator hooks; the shared
    :meth:`pattern_charge` / :meth:`broadcast_charge` drive them.  Load
    state is additive, so one pattern can be accumulated in chunks
    (broadcast does) without changing any number.
    """

    def __init__(self, topology: Topology, n: int) -> None:
        self.topology = topology
        self.n = n

    # -- subclass hooks -------------------------------------------------
    def new_state(self):
        raise NotImplementedError

    def accumulate(self, state, src: np.ndarray, dst: np.ndarray, words: int) -> int:
        """Add one message chunk's per-link loads; return the chunk's
        max route length in hops."""
        raise NotImplementedError

    def loads(self, state) -> np.ndarray:
        """Flatten accumulated state into one directed-link load vector."""
        raise NotImplementedError

    def num_links(self) -> int:
        """Directed links the overlay provisions (0 for n == 1)."""
        raise NotImplementedError

    def hops(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Per-message route lengths (0 for src == dst)."""
        raise NotImplementedError

    # -- shared driving logic ------------------------------------------
    def _finish(self, state, max_hops: int, pairs: int) -> LinkCharge:
        loads = self.loads(state)
        used = loads[loads > 0]
        max_link = int(used.max()) if used.size else 0
        if max_link == 0:
            return LinkCharge(0.0, 0, 0, 0, 0, pairs)
        makespan = (
            math.ceil(max_link / self.topology.bandwidth)
            + self.topology.latency * max_hops
        )
        return LinkCharge(
            makespan=float(makespan),
            max_link_words=max_link,
            total_link_words=int(used.sum()),
            links_used=int(used.size),
            max_hops=int(max_hops),
            pattern_pairs=pairs,
        )

    def pattern_charge(
        self, src: np.ndarray, dst: np.ndarray, words_per_message: int = 1
    ) -> LinkCharge:
        """Per-link accounting of an arbitrary multicommodity pattern."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        state = self.new_state()
        max_hops = self.accumulate(state, src, dst, int(words_per_message))
        return self._finish(state, max_hops, pattern_pairs(src, dst, self.n))

    def broadcast_charge(self, words_per_node: int) -> LinkCharge:
        """The uniform all-to-all pattern: every node sends
        ``words_per_node`` words to every other node.  Exact — the n·(n−1)
        pattern is accumulated in source chunks, never materialized."""
        n = self.n
        if n < 2 or words_per_node <= 0:
            return LinkCharge(0.0, 0, 0, 0, 0, 0)
        state = self.new_state()
        max_hops = 0
        others = np.arange(n, dtype=np.int64)
        for lo in range(0, n, _BROADCAST_CHUNK):
            sources = np.arange(lo, min(lo + _BROADCAST_CHUNK, n), dtype=np.int64)
            src = np.repeat(sources, n - 1)
            dst = np.concatenate(
                [others[others != s] for s in sources]
            )
            max_hops = max(
                max_hops, self.accumulate(state, src, dst, int(words_per_node))
            )
        return self._finish(state, max_hops, n * (n - 1))


class _StarTopology(CompiledTopology):
    """Hub-and-spoke: node 0 relays everything (routes ≤ 2 hops)."""

    HUB = 0

    def new_state(self):
        # up[v] = load on v→hub, down[v] = load on hub→v.
        return (np.zeros(self.n, dtype=np.int64), np.zeros(self.n, dtype=np.int64))

    def num_links(self) -> int:
        return 2 * (self.n - 1) if self.n > 1 else 0

    def hops(self, src, dst):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        return np.where(
            src == dst, 0, (src != self.HUB).astype(np.int64) + (dst != self.HUB)
        )

    def accumulate(self, state, src, dst, words):
        up, down = state
        moving = src != dst
        np.add.at(up, src[moving & (src != self.HUB)], words)
        np.add.at(down, dst[moving & (dst != self.HUB)], words)
        h = self.hops(src, dst)
        return int(h.max(initial=0))

    def loads(self, state):
        up, down = state
        return np.concatenate([up, down])


class _ChainTopology(CompiledTopology):
    """The path 0−1−…−(n−1); a message traverses |src − dst| links."""

    def new_state(self):
        # right[k] = load on k→k+1, left[k] = load on k+1→k.
        return (np.zeros(self.n, dtype=np.int64), np.zeros(self.n, dtype=np.int64))

    def num_links(self) -> int:
        return 2 * (self.n - 1) if self.n > 1 else 0

    def hops(self, src, dst):
        return np.abs(np.asarray(src, np.int64) - np.asarray(dst, np.int64))

    def accumulate(self, state, src, dst, words):
        right, left = state
        going_right = dst > src
        going_left = src > dst
        # Difference arrays: +w at the first link, −w one past the last,
        # cumsum in loads() turns them into per-link totals.
        np.add.at(right, src[going_right], words)
        np.add.at(right, dst[going_right], -words)
        np.add.at(left, dst[going_left], words)
        np.add.at(left, src[going_left], -words)
        h = self.hops(src, dst)
        return int(h.max(initial=0))

    def loads(self, state):
        right, left = state
        return np.concatenate(
            [np.cumsum(right)[: self.n - 1], np.cumsum(left)[: self.n - 1]]
        )


class _RingTopology(CompiledTopology):
    """The cycle 0−1−…−(n−1)−0; messages take the shorter arc
    (clockwise on ties)."""

    def new_state(self):
        # cw[k] = load on k→(k+1) mod n, ccw[k] = load on (k+1) mod n → k.
        return (np.zeros(self.n, dtype=np.int64), np.zeros(self.n, dtype=np.int64))

    def num_links(self) -> int:
        if self.n < 2:
            return 0
        if self.n == 2:
            return 2
        return 2 * self.n

    def hops(self, src, dst):
        cw = np.mod(np.asarray(dst, np.int64) - np.asarray(src, np.int64), self.n)
        return np.minimum(cw, self.n - cw)

    def accumulate(self, state, src, dst, words):
        cw_load, ccw_load = state
        n = self.n
        cw_dist = np.mod(dst - src, n)
        moving = cw_dist != 0
        clockwise = moving & (cw_dist <= n - cw_dist)
        counter = moving & ~clockwise
        # Clockwise cyclic interval [src, dst): linear diff, plus a full
        # +w from 0 for wrapped messages.
        s, d = src[clockwise], dst[clockwise]
        wrap = s > d
        np.add.at(cw_load, s, words)
        np.add.at(cw_load, d, -words)
        np.add.at(cw_load, np.zeros(int(wrap.sum()), dtype=np.int64), words)
        # Counter-clockwise cyclic interval [dst, src) on the mirrored
        # orientation.
        s, d = src[counter], dst[counter]
        wrap = d > s
        np.add.at(ccw_load, d, words)
        np.add.at(ccw_load, s, -words)
        np.add.at(ccw_load, np.zeros(int(wrap.sum()), dtype=np.int64), words)
        h = self.hops(src, dst)
        return int(h.max(initial=0))

    def loads(self, state):
        cw_load, ccw_load = state
        return np.concatenate([np.cumsum(cw_load), np.cumsum(ccw_load)])


class _GridTopology(CompiledTopology):
    """A width × height mesh in row-major id order (the last row may be
    ragged).  Routes are dimension-ordered: along the source row, then
    the target column — unless the turn cell falls off the ragged edge,
    in which case the column-first order is used (one of the two always
    exists)."""

    def __init__(self, topology: Topology, n: int) -> None:
        super().__init__(topology, n)
        self.width = topology.grid_width or max(1, math.ceil(math.sqrt(n)))
        self.height = max(1, math.ceil(n / self.width))

    def new_state(self):
        shape = (self.height, self.width)
        return tuple(np.zeros(shape, dtype=np.int64) for _ in range(4))

    def num_links(self) -> int:
        ids = np.arange(self.n, dtype=np.int64)
        r, c = ids // self.width, ids % self.width
        horizontal = int(((c + 1 < self.width) & (ids + 1 < self.n)).sum())
        vertical = int((ids + self.width < self.n).sum())
        return 2 * (horizontal + vertical)

    def _row_first(self, src, dst):
        """True where the row-first turn cell (src row, dst column)
        exists; its column-first mirror is valid everywhere else."""
        r1, c2 = src // self.width, dst % self.width
        return r1 * self.width + c2 < self.n

    def hops(self, src, dst):
        src = np.asarray(src, np.int64)
        dst = np.asarray(dst, np.int64)
        r1, c1 = src // self.width, src % self.width
        r2, c2 = dst // self.width, dst % self.width
        return np.abs(r1 - r2) + np.abs(c1 - c2)

    def accumulate(self, state, src, dst, words):
        right, left, down, up = state
        src = np.asarray(src, np.int64)
        dst = np.asarray(dst, np.int64)
        moving = src != dst
        src, dst = src[moving], dst[moving]
        r1, c1 = src // self.width, src % self.width
        r2, c2 = dst // self.width, dst % self.width
        row_first = self._row_first(src, dst)
        # Horizontal leg: row r1 (row-first) or r2 (column-first), from
        # the source column to the target column.
        h_row = np.where(row_first, r1, r2)
        self._segment(right, left, h_row, c1, c2, words)
        # Vertical leg: column c2 (row-first) or c1 (column-first).
        v_col = np.where(row_first, c2, c1)
        self._segment(down, up, v_col, r1, r2, words, transpose=True)
        h = np.abs(r1 - r2) + np.abs(c1 - c2)
        return int(h.max(initial=0))

    @staticmethod
    def _segment(fwd, bwd, fixed, start, stop, words, transpose=False):
        """Difference-array update of one axis-aligned leg per message."""
        forward = stop > start
        backward = start > stop
        def _add(grid, line, a, b):
            if transpose:
                np.add.at(grid, (a, line), words)
                np.add.at(grid, (b, line), -words)
            else:
                np.add.at(grid, (line, a), words)
                np.add.at(grid, (line, b), -words)
        _add(fwd, fixed[forward], start[forward], stop[forward])
        _add(bwd, fixed[backward], stop[backward], start[backward])

    def loads(self, state):
        right, left, down, up = state
        return np.concatenate(
            [
                np.cumsum(right, axis=1)[:, : self.width - 1].ravel(),
                np.cumsum(left, axis=1)[:, : self.width - 1].ravel(),
                np.cumsum(down, axis=0)[: self.height - 1].ravel(),
                np.cumsum(up, axis=0)[: self.height - 1].ravel(),
            ]
        )


class _SpannerTopology(CompiledTopology):
    """A Parter–Yogev-style sparsifier of the clique: a ``k``-level hub
    hierarchy with branching b = ⌈n^{1/k}⌉.

    Node v's level-i hub is ``(v // bⁱ)·bⁱ``; every node links to its
    level-1 hub, hubs link up the hierarchy, and the ⌈n/b^{k−1}⌉
    top-level hubs form a clique.  Any two nodes connect through at most
    2(k−1)+1 hops — stretch ≤ 2k−1 over the clique's unit distances —
    using O(k·n + n^{2/k}) directed links instead of n·(n−1)."""

    def __init__(self, topology: Topology, n: int) -> None:
        super().__init__(topology, n)
        k = topology.spanner_k
        self.k = k
        self.branch = max(2, math.ceil(n ** (1.0 / k))) if n > 1 else 2
        ids = np.arange(n, dtype=np.int64)
        #: hubs[i][v] = v's level-i hub (hubs[0] is v itself).
        self.hubs: List[np.ndarray] = [ids]
        for level in range(1, k):
            stride = self.branch**level
            self.hubs.append((ids // stride) * stride)
        codes: List[np.ndarray] = []
        for level in range(k - 1):
            lo, hi = self.hubs[level], self.hubs[level + 1]
            different = lo != hi
            codes.append(lo[different] * n + hi[different])
            codes.append(hi[different] * n + lo[different])
        top = np.unique(self.hubs[k - 1])
        if top.size > 1:
            a = np.repeat(top, top.size)
            b = np.tile(top, top.size)
            off_diagonal = a != b
            codes.append(a[off_diagonal] * n + b[off_diagonal])
        #: Sorted directed-link code table; state is indexed through it.
        self.link_codes = (
            np.unique(np.concatenate(codes)) if codes else np.empty(0, np.int64)
        )

    def new_state(self):
        return np.zeros(self.link_codes.size, dtype=np.int64)

    def num_links(self) -> int:
        return int(self.link_codes.size)

    def _add_links(self, state, frm, to, words):
        use = frm != to
        if not use.any():
            return
        idx = np.searchsorted(self.link_codes, frm[use] * self.n + to[use])
        np.add.at(state, idx, words)

    def _walk(self, src, dst, state=None, words=0):
        """Shared route walk: counts hops, optionally loading links."""
        src = np.asarray(src, np.int64)
        dst = np.asarray(dst, np.int64)
        hops = np.zeros(src.shape, dtype=np.int64)
        met = src == dst
        cur_s, cur_d = src, dst
        for level in range(1, self.k):
            nxt_s, nxt_d = self.hubs[level][src], self.hubs[level][dst]
            climbing = ~met
            up = climbing & (cur_s != nxt_s)
            down = climbing & (cur_d != nxt_d)
            if state is not None:
                self._add_links(state, cur_s[up], nxt_s[up], words)
                self._add_links(state, nxt_d[down], cur_d[down], words)
            hops[up] += 1
            hops[down] += 1
            cur_s = np.where(climbing, nxt_s, cur_s)
            cur_d = np.where(climbing, nxt_d, cur_d)
            met = met | (cur_s == cur_d)
        crossing = ~met
        if state is not None:
            self._add_links(state, cur_s[crossing], cur_d[crossing], words)
        hops[crossing] += 1
        return hops

    def hops(self, src, dst):
        return self._walk(src, dst)

    def accumulate(self, state, src, dst, words):
        hops = self._walk(src, dst, state=state, words=words)
        return int(hops.max(initial=0))

    def loads(self, state):
        return state


_COMPILED_KINDS = {
    "star": _StarTopology,
    "ring": _RingTopology,
    "chain": _ChainTopology,
    "grid": _GridTopology,
    "spanner": _SpannerTopology,
}


@lru_cache(maxsize=128)
def _compile(topology: Topology, n: int) -> CompiledTopology:
    if topology.is_clique:
        raise ValueError(
            "the clique topology has no compiled overlay — its makespan is "
            "the uniform rounds charge (makespan_for_rounds)"
        )
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    return _COMPILED_KINDS[topology.kind](topology, n)


def makespan_charge(
    topology: Optional[Topology],
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    words_per_message: int,
    rounds: float,
) -> Tuple[float, Dict[str, float]]:
    """The (makespan, extra-stats) pair a router records for one pattern.

    The single seam both routers charge through: the clique (or
    ``topology=None``) reports ``makespan == rounds`` at the default
    bandwidth/latency and **no** extra stats — the byte-identity the
    differential suite pins — while overlays report the per-link
    accounting of :class:`LinkCharge` alongside the unchanged uniform
    rounds.
    """
    if topology is None or topology.is_clique:
        bandwidth = 1.0 if topology is None else topology.bandwidth
        latency = 0.0 if topology is None else topology.latency
        if rounds <= 0:
            return 0.0, {}
        return rounds / bandwidth + latency, {}
    charge = topology.compile(n).pattern_charge(src, dst, words_per_message)
    return charge.makespan, charge.stats()
