"""Sequential brute-force listing (ground truth / sanity baseline).

Not a distributed algorithm: it enumerates cliques centrally and reports
zero rounds.  Benchmarks use it as the correctness oracle and as the
"infinite bandwidth" reference point.
"""

from __future__ import annotations

from repro.core.result import ListingResult
from repro.graphs.cliques import enumerate_cliques
from repro.graphs.graph import Graph


def brute_force_listing(graph: Graph, p: int) -> ListingResult:
    """Enumerate all Kp centrally; attribute each to its minimum member."""
    result = ListingResult(p=p, model="brute-force", cliques=set())
    for clique in enumerate_cliques(graph, p):
        result.attribute(min(clique), clique)
    result.ledger.charge("sequential_enumeration", 0.0, cliques=len(result.cliques))
    return result
