"""Trivial broadcast baselines for CONGEST Kp listing.

Two classic upper bounds, both of which the paper's algorithm must beat
on dense graphs:

- **neighborhood broadcast** — every node sends its full adjacency list
  along every incident edge; Δ rounds of pipelining.  Afterwards every
  node knows the full 2-neighborhood edge set and lists every clique it
  belongs to.  This is the Θ̃(n)-round folklore algorithm referenced in
  Remark 2.6.
- **orientation broadcast** — every node sends only its *out-edges* under
  a degeneracy orientation; 2·A rounds.  Every clique member receives the
  out-edges of all other members, and every clique edge is oriented away
  from one of its two endpoints (both clique members), so the minimum
  member lists the clique.  This matches the final stage of Theorem 1.1
  and is the strong baseline on sparse graphs.
"""

from __future__ import annotations

from repro.core.result import ListingResult
from repro.graphs.cliques import enumerate_cliques
from repro.graphs.graph import Graph
from repro.graphs.orientation import degeneracy_orientation
from repro.graphs.properties import max_degree


def neighborhood_broadcast_listing(graph: Graph, p: int) -> ListingResult:
    """Full-adjacency broadcast: Δ rounds; every member lists its cliques."""
    result = ListingResult(p=p, model="broadcast-neighborhood", cliques=set())
    delta = max_degree(graph)
    result.ledger.charge("broadcast_adjacency", float(delta), max_degree=delta)
    for clique in enumerate_cliques(graph, p):
        for member in clique:
            result.attribute(member, clique)
    return result


def broadcast_listing(graph: Graph, p: int) -> ListingResult:
    """Oriented out-edge broadcast: 2·degeneracy rounds.

    The out-edge lists of a node's neighbors contain every edge among
    those neighbors (each such edge leaves one of its endpoints), so every
    node reconstructs all cliques through itself; the minimum member
    outputs each.
    """
    result = ListingResult(p=p, model="broadcast-orientation", cliques=set())
    orientation = degeneracy_orientation(graph)
    out_degree = orientation.max_out_degree
    result.ledger.charge(
        "broadcast_out_edges", 2.0 * max(1, out_degree), out_degree=out_degree
    )
    for clique in enumerate_cliques(graph, p):
        result.attribute(min(clique), clique)
    return result
