"""Eden et al. [DISC 2019] style K4 listing — the prior state of the art.

The paper improves on Eden, Fiat, Fischer, Kuhn, Oshman's
O(n^{5/6+o(1)})-round K4 and O(n^{21/22+o(1)})-round K5 algorithms.  For
the E4 comparison benchmark we provide:

- an *operational* reimplementation of their K4 heavy/light scheme on our
  simulator (:func:`eden_k4_listing`), faithful to the mechanism the
  paper's §1.1/§2.4.1 describe: heavy outside nodes (> n^{1/2} cluster
  neighbors — their threshold) ship their **entire neighborhood** into
  the cluster, while light outside nodes list their K4s themselves by
  querying the cluster;
- the analytic round curves (``bounds.eden_k4`` / ``bounds.eden_k5``) for
  the asymptotic comparison.

The operational variant exists to have a mechanically comparable
baseline; its round accounting uses the same measured-load rules as the
main algorithm, so "who wins at which n" comparisons are apples-to-apples.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Optional, Set

import numpy as np

from repro.congest.ledger import RoundLedger
from repro.congest.routing import ClusterRouter
from repro.core.heavy_light import classify_outside_neighbors
from repro.core.params import AlgorithmParameters
from repro.core.result import ListingResult
from repro.decomposition.expander import expander_decomposition
from repro.graphs.cliques import enumerate_cliques
from repro.graphs.graph import Graph
from repro.graphs.orientation import degeneracy_orientation

Clique = FrozenSet[int]


def eden_k4_listing(
    graph: Graph,
    seed: int = 0,
    heavy_exponent: float = 0.5,
) -> ListingResult:
    """Eden-et-al.-style K4 listing (one decomposition level).

    Scheme: expander-decompose the graph; per cluster C,

    - outside nodes with more than n^{heavy_exponent} cluster neighbors
      are heavy and send their whole neighborhood into C (deg(v) ≤ n
      words split over > n^{1/2} links → ≤ n^{1/2} rounds);
    - light outside nodes list, by querying C, the K4 with both outside
      endpoints light;
    - the cluster lists every K4 it can see (cluster + crossing + heavy
      neighborhoods) with a *generic* (non-sparsity-aware) in-cluster
      exchange: every known edge goes to every responsible node with the
      worst-case n^{2/3}-per-node reservation their analysis pays for.

    Es/Er edges are handled by recursing on the leftover graph (their
    layered decomposition), here charged as repeated invocations.
    """
    p = 4
    n = graph.num_nodes
    result = ListingResult(p=p, model="eden-k4", cliques=set())
    ledger = result.ledger
    if n == 0 or p > n:
        return result

    truth = enumerate_cliques(graph, p)
    heavy_threshold = max(1, math.ceil(n**heavy_exponent))
    threshold = max(1, math.ceil(n ** (2.0 / 3.0) / math.log2(max(2, n))))
    current = graph.copy()
    level = 0
    remaining: Set[Clique] = set(truth)

    while current.num_edges > 0 and level < math.ceil(math.log2(max(4, n))) + 2:
        decomposition = expander_decomposition(current, threshold=threshold, ledger=ledger)
        ledger.phases()[-1].name = f"level[{level}]/decomposition"
        covered_edges = set(decomposition.em_edges)
        phase_heavy = 0.0
        phase_light = 0.0
        phase_cluster = 0.0
        for cluster in decomposition.clusters:
            members = set(cluster.nodes)
            split = classify_outside_neighbors(current, members, heavy_threshold)
            # Heavy push: whole neighborhood, deg(v) edges over g_{v,C} links.
            worst = 0.0
            for v in split.heavy:
                g = split.cluster_degree[v]
                worst = max(worst, 2.0 * math.ceil(current.degree(v) / g))
            phase_heavy = max(phase_heavy, worst)
            # Light query: v asks its cluster neighbors about each of its
            # ≤ n^{1/2} cluster neighbors — their scheme's n^{1/2} term.
            light_worst = max(
                (float(split.cluster_degree[v]) for v in split.light), default=0.0
            )
            phase_light = max(phase_light, 2.0 * light_worst)
            # Generic in-cluster listing: worst-case reservation of
            # k^{2-2/p}/k = k^{1-2/p} per node (no sparsity awareness).
            k = cluster.size
            router = ClusterRouter(sorted(members), max(1, cluster.min_internal_degree), n)
            reservation = math.ceil(k ** (2.0 - 2.0 / p) / max(1, k))
            phase_cluster = max(
                phase_cluster,
                router.rounds_for_load({0: reservation * n // max(1, k)}, {}),
            )
        ledger.charge(f"level[{level}]/heavy_push", phase_heavy)
        ledger.charge(f"level[{level}]/light_query", phase_light)
        ledger.charge(f"level[{level}]/cluster_listing", phase_cluster)

        # Every K4 with an edge in Em is listed at this level.
        listed_here = {
            clique
            for clique in remaining
            if _has_edge_in(clique, covered_edges)
        }
        for clique in listed_here:
            result.attribute(min(clique), clique)
        remaining -= listed_here
        next_edges = decomposition.es_edges | decomposition.er_edges
        if len(next_edges) >= current.num_edges:
            break
        current = Graph(n, next_edges)
        level += 1

    # Remnant: broadcast out-edges (sparse by now).
    orientation = degeneracy_orientation(current)
    ledger.charge("final_broadcast", 2.0 * max(1, orientation.max_out_degree))
    for clique in remaining:
        result.attribute(min(clique), clique)
    result.stats["levels"] = float(level)
    return result


def _has_edge_in(clique: Clique, edges: Set) -> bool:
    members = sorted(clique)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if (u, v) in edges:
                return True
    return False
