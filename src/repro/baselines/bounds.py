"""Round-complexity formulas from the paper and the related literature.

Pure functions of (n, p, m) used by the comparison benchmarks (E4, E9)
to draw the theory curves next to the measured round counts.  Polylog and
n^{o(1)} factors are set to 1 unless a ``polylog`` argument is supplied —
EXPERIMENTS.md reports both.
"""

from __future__ import annotations

import math


def _polylog(n: int, exponent: float) -> float:
    return math.log2(max(2, n)) ** exponent


# ----------------------------------------------------------------------
# This paper
# ----------------------------------------------------------------------
def this_paper_congest(n: int, p: int, polylog: float = 0.0) -> float:
    """Theorem 1.1: Õ(n^{3/4} + n^{p/(p+2)}) (p ≥ 4)."""
    if p < 4:
        raise ValueError("Theorem 1.1 covers p >= 4")
    base = n**0.75 + n ** (p / (p + 2.0))
    return base * _polylog(n, polylog)


def this_paper_k4(n: int, polylog: float = 0.0) -> float:
    """Theorem 1.2: Õ(n^{2/3})."""
    return (n ** (2.0 / 3.0)) * _polylog(n, polylog)


def this_paper_congested_clique(n: int, p: int, m: int, polylog: float = 0.0) -> float:
    """Theorem 1.3: Θ̃(1 + m/n^{1+2/p})."""
    return (1.0 + m / (n ** (1.0 + 2.0 / p))) * _polylog(n, polylog)


# ----------------------------------------------------------------------
# Prior upper bounds
# ----------------------------------------------------------------------
def eden_k4(n: int, polylog: float = 0.0) -> float:
    """Eden et al. [DISC 2019]: O(n^{5/6 + o(1)}) for K4."""
    return (n ** (5.0 / 6.0)) * _polylog(n, polylog)


def eden_k5(n: int, polylog: float = 0.0) -> float:
    """Eden et al. [DISC 2019]: O(n^{21/22 + o(1)}) for K5."""
    return (n ** (21.0 / 22.0)) * _polylog(n, polylog)


def eden_generic_subgraph(n: int, p: int, polylog: float = 0.0) -> float:
    """Eden et al.: arbitrary p-node subgraphs in O(n^{2−2/(3p+1)+o(1)})."""
    return (n ** (2.0 - 2.0 / (3.0 * p + 1.0))) * _polylog(n, polylog)


def chang_saranurak_triangle(n: int, polylog: float = 1.0) -> float:
    """Chang–Saranurak [PODC 2019]: Õ(n^{1/3}) triangle listing (tight)."""
    return (n ** (1.0 / 3.0)) * _polylog(n, polylog)


def chang_pettie_zhang_triangle(n: int, polylog: float = 1.0) -> float:
    """Chang–Pettie–Zhang [SODA 2019]: Õ(n^{1/2}) triangle listing."""
    return (n**0.5) * _polylog(n, polylog)


def izumi_legall_triangle(n: int, polylog: float = 1.0) -> float:
    """Izumi–Le Gall [PODC 2017]: Õ(n^{3/4}) triangle listing."""
    return (n**0.75) * _polylog(n, polylog)


def congested_clique_general(n: int, p: int) -> float:
    """General (non-sparsity-aware) CONGESTED CLIQUE Kp listing: O(n^{1−2/p})."""
    return n ** (1.0 - 2.0 / p)


def trivial_broadcast(n: int) -> float:
    """Remark 2.6: Θ̃(n) by broadcasting neighborhoods."""
    return float(n)


# ----------------------------------------------------------------------
# Lower bounds
# ----------------------------------------------------------------------
def fischer_listing_lower_bound(n: int, p: int, polylog: float = 0.0) -> float:
    """Fischer et al. [SPAA 2018]: Ω̃(n^{(p−2)/p}) for Kp listing."""
    return (n ** ((p - 2.0) / p)) * _polylog(n, polylog)


def czumaj_konrad_detection_lower_bound(n: int, p: int) -> float:
    """Czumaj–Konrad [DISC 2018]: Ω̃(n^{1/2}) for Kp detection, 4 ≤ p ≤ √n;
    Ω̃(n/p) for p ≥ √n."""
    if p < 4:
        raise ValueError("bound stated for p >= 4")
    if p <= math.isqrt(n):
        return n**0.5
    return n / p


def congested_clique_listing_lower_bound(n: int, p: int, m: int) -> float:
    """Tightness direction of Theorem 1.3: Ω̃(m/n^{1+2/p}) (via [10, 15])."""
    return m / (n ** (1.0 + 2.0 / p))


def optimality_gap(n: int, p: int) -> float:
    """Upper/lower exponent gap for this paper's CONGEST result.

    Theorem 1.1 exponent max(3/4, p/(p+2)) versus the Ω̃(n^{(p−2)/p})
    lower bound; the gap shrinks as p grows (§5 discussion).
    """
    upper = max(0.75, p / (p + 2.0))
    lower = (p - 2.0) / p
    return upper - lower
