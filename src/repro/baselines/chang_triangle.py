"""Chang–Pettie–Zhang-style triangle listing (the p = 3 ancestor).

The paper's pipeline is a strict generalization of the SODA 2019 triangle
algorithm: at p = 3 no outside edges ever matter (a triangle with an edge
in a cluster has its third vertex adjacent to both endpoints, so all its
edges are internal or crossing), and the in-cluster step degenerates to
the same partition-and-learn scheme.  Running our implementation at p = 3
therefore *is* the Chang-et-al.-style algorithm; this module packages it
under its own name for the baseline benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.listing import list_cliques_congest
from repro.core.params import AlgorithmParameters
from repro.core.result import ListingResult
from repro.graphs.graph import Graph


def chang_style_triangle_listing(
    graph: Graph,
    params: Optional[AlgorithmParameters] = None,
    seed: Optional[int] = None,
) -> ListingResult:
    """Triangle listing through the expander-decomposition pipeline."""
    if params is None:
        params = AlgorithmParameters(p=3)
    result = list_cliques_congest(graph, 3, params=params, seed=seed)
    result.model = "chang-triangle"
    return result
