"""General (non-sparsity-aware) CONGESTED CLIQUE Kp listing.

The classic Dolev–Lenzen–Peleg-style scheme: partition the n nodes into
n^{1/p} parts *deterministically* (contiguous blocks) and have node i
learn every **potential** edge slot between its p assigned parts.  Without
sparsity awareness the schedule must reserve bandwidth for the complete
bipartite slot count — p²·(n^{1−1/p})² words per node — giving
Θ(n^{1−2/p}) rounds regardless of the input's density.

This is the comparator that makes Theorem 1.3's point: on sparse inputs
the sparsity-aware algorithm's measured-load cost collapses to Õ(1) while
this baseline stays at n^{1−2/p}.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.congest.congested_clique import CongestedClique
from repro.core.params import AlgorithmParameters
from repro.core.partition import responsible_new_id
from repro.core.result import ListingResult
from repro.graphs.cliques import enumerate_cliques
from repro.graphs.graph import Graph


def general_congested_clique_listing(graph: Graph, p: int) -> ListingResult:
    """Worst-case-reservation Kp listing in the CONGESTED CLIQUE."""
    if p < 3:
        raise ValueError(f"p must be >= 3, got {p}")
    n = graph.num_nodes
    result = ListingResult(p=p, model="cc-general", cliques=set())
    if n == 0 or p > n:
        return result

    clique_net = CongestedClique(n)
    s = max(1, int(math.floor(n ** (1.0 / p))))
    while (s + 1) ** p <= n:
        s += 1
    block = math.ceil(n / s)

    # Reserved receive volume: all p² ordered part pairs, every potential
    # edge slot between two blocks of ≤ ⌈n/s⌉ nodes, 2 words per slot.
    slots_per_pair = block * block
    reserved_words = 2 * p * p * slots_per_pair
    rounds = clique_net.rounds_for_load(reserved_words, reserved_words)
    result.ledger.charge(
        "learn_all_slots",
        rounds,
        parts=s,
        reserved_words=reserved_words,
        theory_rounds=n ** (1.0 - 2.0 / p),
    )

    part_of = [min(s - 1, v // block) for v in range(n)]
    for clique in enumerate_cliques(graph, p):
        multiset = [part_of[v] for v in sorted(clique)]
        node = responsible_new_id(multiset, s, p) - 1
        result.attribute(node, clique)
    result.stats.update({"n": float(n), "parts": float(s)})
    return result
