"""Baseline and comparator algorithms.

The paper positions its results against:

- the trivial *broadcast* upper bounds (every node ships its adjacency or
  its oriented out-edges to its neighbors) — :mod:`broadcast`;
- Eden, Fiat, Fischer, Kuhn, Oshman [DISC 2019]: K4 in O(n^{5/6+o(1)}),
  K5 in O(n^{21/22+o(1)}) — :mod:`eden` (operational K4 scheme + analytic
  cost curves);
- Chang, Pettie, Zhang [SODA 2019] triangle listing via expander
  decomposition — :mod:`chang_triangle` (our pipeline at p = 3);
- the general (non-sparsity-aware) CONGESTED CLIQUE listing at
  Θ(n^{1−2/p}) rounds — :mod:`cc_general`;
- the lower bounds of Fischer et al. / Pandurangan et al. and the
  round-complexity formulas of all of the above — :mod:`bounds`;
- a sequential :mod:`brute_force` enumerator used for ground truth.
"""

from repro.baselines.broadcast import broadcast_listing, neighborhood_broadcast_listing
from repro.baselines.brute_force import brute_force_listing
from repro.baselines.cc_general import general_congested_clique_listing
from repro.baselines.chang_triangle import chang_style_triangle_listing
from repro.baselines.eden import eden_k4_listing
from repro.baselines import bounds

__all__ = [
    "broadcast_listing",
    "neighborhood_broadcast_listing",
    "brute_force_listing",
    "general_congested_clique_listing",
    "chang_style_triangle_listing",
    "eden_k4_listing",
    "bounds",
]
