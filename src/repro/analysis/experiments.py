"""Shared experiment driver used by the benchmarks and EXPERIMENTS.md.

Each experiment (E1–E10 of DESIGN.md §5) is a function that runs a sweep,
verifies correctness, and returns a table of rows.  Benchmarks wrap these
with pytest-benchmark; the ``__main__`` entry point prints the tables for
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.complexity import crossover_size, fit_exponent
from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.baselines.broadcast import broadcast_listing, neighborhood_broadcast_listing
from repro.baselines.cc_general import general_congested_clique_listing
from repro.baselines.eden import eden_k4_listing
from repro.core.congested_clique_listing import list_cliques_congested_clique
from repro.core.listing import list_cliques_congest
from repro.core.params import AlgorithmParameters
from repro.graphs.cliques import enumerate_cliques
from repro.graphs.generators import erdos_renyi, gnm_random_graph
from repro.graphs.graph import Graph


@dataclass
class ExperimentTable:
    """A named table of result rows (dicts), printable as markdown."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **row: object) -> None:
        self.rows.append(row)

    def to_markdown(self) -> str:
        if not self.rows:
            return f"### {self.name}\n\n(no rows)\n"
        headers = list(self.rows[0].keys())
        lines = [f"### {self.name}", "", self.description, ""]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in self.rows:
            cells = []
            for h in headers:
                value = row.get(h, "")
                if isinstance(value, float):
                    cells.append(f"{value:.3g}")
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines) + "\n"


def dense_workload(n: int, seed: int = 0) -> Graph:
    """The dense regime the sub-linear claims are about: ER with p = 0.5."""
    return erdos_renyi(n, 0.5, seed=seed)


def run_congest_sweep(
    p: int,
    sizes: Sequence[int],
    variant: Optional[str] = None,
    density: float = 0.5,
    seed: int = 0,
    verify: bool = True,
) -> ExperimentTable:
    """E1/E2 core: rounds vs n for the CONGEST algorithm."""
    label = variant or ("k4" if p == 4 else "generic")
    table = ExperimentTable(
        name=f"congest_p{p}_{label}",
        description=(
            f"Kp listing rounds vs n (p={p}, variant={label}, ER density {density})."
        ),
    )
    rounds_list: List[float] = []
    for n in sizes:
        g = erdos_renyi(n, density, seed=seed)
        result = list_cliques_congest(g, p, variant=variant, seed=seed)
        if verify:
            verify_listing(g, result).raise_if_failed()
        rounds_list.append(result.rounds)
        table.add(
            n=n,
            m=g.num_edges,
            rounds=result.rounds,
            cliques=len(result.cliques),
            outer_iterations=result.stats.get("outer_iterations", 0.0),
            theory=bounds.this_paper_k4(n)
            if label == "k4"
            else bounds.this_paper_congest(n, p),
        )
    if len(sizes) >= 2:
        fit = fit_exponent(list(sizes), rounds_list)
        theory_exp = 2.0 / 3.0 if label == "k4" else max(0.75, p / (p + 2.0))
        table.notes.append(
            f"fitted exponent {fit.slope:.3f} (R²={fit.r_squared:.3f}) vs theory "
            f"{theory_exp:.3f} (+polylog at finite n)"
        )
    return table


def run_congested_clique_sweep(
    p: int,
    n: int,
    edge_counts: Sequence[int],
    seed: int = 0,
    verify: bool = True,
) -> ExperimentTable:
    """E3: CONGESTED CLIQUE rounds vs m at fixed n."""
    table = ExperimentTable(
        name=f"congested_clique_p{p}_n{n}",
        description=f"Sparsity-aware CONGESTED CLIQUE Kp rounds vs m (p={p}, n={n}).",
    )
    for m in edge_counts:
        g = gnm_random_graph(n, m, seed=seed)
        truth = enumerate_cliques(g, p) if verify else None
        result = list_cliques_congested_clique(g, p, seed=seed)
        general = general_congested_clique_listing(g, p)
        if verify:
            verify_listing(g, result, truth=truth).raise_if_failed()
            verify_listing(g, general, truth=truth).raise_if_failed()
        table.add(
            m=m,
            rounds=result.rounds,
            learn_rounds=result.ledger.rounds_by_prefix("learn_edges"),
            cliques=len(result.cliques),
            theory=bounds.this_paper_congested_clique(n, p, m),
            general_measured=general.rounds,
        )
    table.notes.append(
        "theory = 1 + m/n^{1+2/p}; the O(1) regime is m ≤ n^{1+2/p} "
        f"= {n ** (1 + 2 / p):.0f} edges here"
    )
    return table


def run_baseline_comparison(
    sizes: Sequence[int], density: float = 0.5, seed: int = 0
) -> ExperimentTable:
    """E4: our K4 vs Eden-style K4 vs broadcast baselines."""
    table = ExperimentTable(
        name="baselines_k4",
        description="K4 listing round comparison (measured, same workloads).",
    )
    ours: List[float] = []
    eden: List[float] = []
    bcast: List[float] = []
    for n in sizes:
        g = erdos_renyi(n, density, seed=seed)
        truth = enumerate_cliques(g, 4)
        r_ours = list_cliques_congest(g, 4, variant="k4", seed=seed)
        r_eden = eden_k4_listing(g, seed=seed)
        r_bcast = broadcast_listing(g, 4)
        r_nbr = neighborhood_broadcast_listing(g, 4)
        for r in (r_ours, r_eden, r_bcast, r_nbr):
            verify_listing(g, r, truth=truth).raise_if_failed()
        ours.append(r_ours.rounds)
        eden.append(r_eden.rounds)
        bcast.append(r_bcast.rounds)
        table.add(
            n=n,
            ours_k4=r_ours.rounds,
            eden_k4=r_eden.rounds,
            broadcast_orientation=r_bcast.rounds,
            broadcast_neighborhood=r_nbr.rounds,
            theory_ours=bounds.this_paper_k4(n),
            theory_eden=bounds.eden_k4(n),
        )
    table.notes.append(
        f"measured crossover ours<=eden at n={crossover_size(list(sizes), ours, eden)} "
        "(inf = not within the sweep)"
    )
    table.notes.append(
        "At simulation scale the polylog routing slack dominates all sub-linear "
        "algorithms, so the trivial broadcasts win and the Eden comparator "
        "(a coarser operational model with fewer charged phases) sits below "
        "ours; the asymptotic ordering is carried by the theory columns "
        "(exponents 2/3 < 5/6 < 1)."
    )
    return table
