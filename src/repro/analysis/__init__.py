"""Measurement and verification utilities for the experiment harness."""

from repro.analysis.verification import (
    VerificationReport,
    verify_listing,
    verify_partition_bound,
)
from repro.analysis.complexity import fit_exponent, theory_comparison

__all__ = [
    "VerificationReport",
    "verify_listing",
    "verify_partition_bound",
    "fit_exponent",
    "theory_comparison",
]
