"""Measurement, verification and batch-sweep utilities.

- :mod:`repro.analysis.verification` — check listing output against
  sequential ground truth.
- :mod:`repro.analysis.complexity` — exponent fits and theory curves.
- :mod:`repro.analysis.experiments` — the E1–E10 experiment drivers.
- :mod:`repro.analysis.sweeps` — the batched sweep runner (grid specs,
  JSON result cache, multiprocessing fan-out).
- :mod:`repro.analysis.report` — markdown rendering for experiment and
  sweep tables.
"""

from repro.analysis.verification import (
    VerificationReport,
    verify_listing,
    verify_partition_bound,
)
from repro.analysis.complexity import fit_exponent, theory_comparison
from repro.analysis.sweeps import RunSpec, SweepResult, SweepSpec, run_sweep

__all__ = [
    "VerificationReport",
    "verify_listing",
    "verify_partition_bound",
    "fit_exponent",
    "theory_comparison",
    "RunSpec",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
]
