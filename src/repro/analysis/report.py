"""EXPERIMENTS.md report generation.

``python -m repro.analysis.report`` runs every experiment sweep (E1–E10 of
DESIGN.md §5) at a laptop-scale configuration, verifies correctness on
each run, and prints the markdown tables that EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import math
import sys
from typing import List

import numpy as np

from repro.analysis.complexity import fit_exponent
from repro.analysis.experiments import (
    ExperimentTable,
    run_baseline_comparison,
    run_congest_sweep,
    run_congested_clique_sweep,
)
from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.congest.ledger import RoundLedger
from repro.core.arb_list import ArbListState, arb_list
from repro.core.params import AlgorithmParameters
from repro.decomposition import expander_decomposition, validate_decomposition
from repro.decomposition.mixing import polylog_mixing_budget
from repro.graphs.generators import (
    bounded_arboricity_graph,
    clustered_graph,
    erdos_renyi,
    gnm_random_graph,
)
from repro.graphs.orientation import Orientation, degeneracy_orientation


def experiment_e1_e2(sizes: List[int]) -> List[ExperimentTable]:
    """E1/E2: CONGEST rounds vs n for p ∈ {4,5,6} + the K4 variant."""
    tables = []
    for p in (4, 5, 6):
        params = AlgorithmParameters(p=p, variant="generic", stop_scale=0.5)
        tables.append(
            _congest_sweep_with_params(p, sizes, params, f"E1 p={p} (generic)")
        )
    k4_params = AlgorithmParameters(p=4, variant="k4", stop_scale=0.5)
    tables.append(_congest_sweep_with_params(4, sizes, k4_params, "E2 p=4 (k4 variant)"))
    tables.append(experiment_e2_phase_swap())
    return tables


def experiment_e2_phase_swap() -> ExperimentTable:
    """E2b: the structural difference between the variants (§3).

    On a clustered workload with sparse cluster boundaries (so C-light
    nodes exist), the generic variant pays the light-gather phase while
    the K4 variant replaces it with the sequential light-node listing.
    """
    from repro.core.listing import list_cliques_congest

    table = ExperimentTable(
        name="E2b K4-variant phase swap",
        description=(
            "Clustered workload (4 × 32 blocks, sparse boundaries): the K4 "
            "variant eliminates gather_light and pays light_listing instead "
            "— the mechanism behind the Õ(n^{3/4}) → Õ(n^{2/3}) improvement."
        ),
    )
    g = clustered_graph(4, 32, intra_p=0.85, inter_edges_per_pair=10, seed=9)
    for variant in ("generic", "k4"):
        params = AlgorithmParameters(
            p=4, variant=variant, stop_scale=0.5, phi=0.05
        )
        result = list_cliques_congest(g, 4, params=params, seed=9)
        verify_listing(g, result).raise_if_failed()
        gather_light = sum(
            ph.rounds
            for ph in result.ledger.phases()
            if ph.name.endswith("gather_light")
        )
        light_listing = sum(
            ph.rounds
            for ph in result.ledger.phases()
            if ph.name.endswith("light_listing")
        )
        table.add(
            variant=variant,
            rounds=round(result.rounds, 1),
            gather_light=round(gather_light, 1),
            light_listing=round(light_listing, 1),
            cliques=len(result.cliques),
        )
    return table


def _congest_sweep_with_params(p, sizes, params, name) -> ExperimentTable:
    from repro.core.listing import list_cliques_congest

    table = ExperimentTable(
        name=name,
        description=(
            f"Rounds vs n (ER density 0.5, stop_scale={params.stop_scale}); "
            f"theory exponent {'2/3' if params.variant == 'k4' else 'max(3/4, p/(p+2))'}."
        ),
    )
    rounds_list = []
    for n in sizes:
        g = erdos_renyi(n, 0.5, seed=n)
        result = list_cliques_congest(g, p, params=params, seed=n)
        verify_listing(g, result).raise_if_failed()
        rounds_list.append(result.rounds)
        theory = (
            bounds.this_paper_k4(n)
            if params.variant == "k4"
            else bounds.this_paper_congest(n, p)
        )
        table.add(
            n=n,
            m=g.num_edges,
            rounds=round(result.rounds, 1),
            cliques=len(result.cliques),
            outer=result.stats["outer_iterations"],
            theory_n_e=round(theory, 1),
        )
    fit = fit_exponent(sizes, rounds_list)
    theory_exp = 2 / 3 if params.variant == "k4" else max(0.75, p / (p + 2))
    table.notes.append(
        f"fitted exponent **{fit.slope:.2f}** (R²={fit.r_squared:.3f}) vs theory "
        f"**{theory_exp:.2f}** + polylog"
    )
    return table


def experiment_e3() -> List[ExperimentTable]:
    tables = []
    for p, n in ((3, 128), (4, 128), (5, 128)):
        knee = n ** (1 + 2 / p)
        max_edges = int(0.55 * n * (n - 1) / 2)
        edge_counts = sorted(
            {min(max(8, int(knee * f)), max_edges) for f in (0.1, 0.5, 1.0, 2.0, 4.0)}
        )
        tables.append(run_congested_clique_sweep(p, n, edge_counts, seed=2))
    return tables


def experiment_e4(sizes: List[int]) -> ExperimentTable:
    return run_baseline_comparison(sizes, density=0.5, seed=3)


def experiment_e5() -> ExperimentTable:
    table = ExperimentTable(
        name="E5 decomposition quality",
        description="Definition 2.2 guarantees, measured per graph family.",
    )
    for name, (graph, threshold, phi) in {
        "dense_er": (erdos_renyi(192, 0.4, seed=4), 12, None),
        "caveman": (
            clustered_graph(4, 48, intra_p=0.8, inter_edges_per_pair=2, seed=4),
            10,
            0.05,
        ),
        "sparse_arb3": (bounded_arboricity_graph(384, 3, seed=4), 8, None),
    }.items():
        ledger = RoundLedger()
        decomposition = expander_decomposition(
            graph, threshold=threshold, phi=phi, ledger=ledger
        )
        validate_decomposition(graph, decomposition, strict_mixing=True)
        stats = decomposition.stats()
        mixing = [
            c.mixing_time for c in decomposition.clusters if c.mixing_time is not None
        ]
        table.add(
            family=name,
            n=graph.num_nodes,
            m=graph.num_edges,
            clusters=int(stats["num_clusters"]),
            er_frac=round(stats["er_fraction"], 3),
            es_outdeg=int(stats["es_out_degree"]),
            threshold=threshold,
            worst_mix=round(max(mixing), 1) if mixing else "-",
            budget=round(polylog_mixing_budget(graph.num_nodes), 1),
            charged_rounds=round(ledger.total_rounds, 1),
        )
    table.notes.append("All rows satisfy |Er| ≤ |E|/6, out-deg(Es) ≤ n^δ, mixing ≤ polylog budget.")
    return table


def experiment_e6() -> ExperimentTable:
    table = ExperimentTable(
        name="E6 ARB-LIST contraction",
        description=(
            "|Êr| ≤ |Er|/4 per invocation; bad-edge fraction ≤ 1/25.  "
            "Workload: a 6-block caveman graph whose inter-block edges force "
            "multiple deferral rounds (a dense ER input collapses to one "
            "cluster in a single invocation)."
        ),
    )
    g = clustered_graph(6, 22, intra_p=0.75, inter_edges_per_pair=6, seed=5)
    orientation = degeneracy_orientation(g)
    state = ArbListState(
        n=g.num_nodes,
        es_edges=set(),
        es_orientation=Orientation(g.num_nodes),
        er_edges=g.edge_set(),
        orientation=orientation,
        arboricity=max(1, orientation.max_out_degree),
        threshold=8,
    )
    params = AlgorithmParameters(p=4, phi=0.08)
    iteration = 0
    while state.er_edges and iteration < 6:
        before = len(state.er_edges)
        outcome = arb_list(state, params, np.random.default_rng(0), RoundLedger())
        table.add(
            iteration=iteration,
            er_before=before,
            er_after=len(state.er_edges),
            ratio=round(len(state.er_edges) / before, 3),
            bad_edges=len(outcome.bad_edges),
            goal_edges=len(outcome.goal_edges),
        )
        iteration += 1
    table.notes.append("ratio column must stay ≤ 0.25 (Theorem 2.9).")
    return table


def experiment_e7() -> ExperimentTable:
    from repro.core.partition import (
        lemma_2_7_bound,
        max_pair_load,
        random_partition,
        sample_induced_edges,
    )

    table = ExperimentTable(
        name="E7 Lemma 2.7",
        description="Sampling: induced edges vs the 6q²m̄ bound (50 trials each).",
    )
    g = gnm_random_graph(400, 12_000, seed=6)
    rng = np.random.default_rng(6)
    for q in (0.2, 0.3, 0.5):
        worst = 0.0
        for _ in range(50):
            _, induced = sample_induced_edges(g, q, rng)
            worst = max(worst, induced / lemma_2_7_bound(g, q))
        table.add(q=q, worst_induced_over_bound=round(worst, 3), violations=0 if worst <= 1 else 1)
    for s in (2, 3, 4):
        worst_load = 0
        for _ in range(50):
            partition = random_partition(g.num_nodes, s, rng)
            worst_load = max(worst_load, max_pair_load(g.edges(), partition))
        table.add(
            q=f"parts={s}",
            worst_induced_over_bound=round(worst_load / (g.num_edges / s**2), 3),
            violations="-",
        )
    table.notes.append(
        "Top rows: vertex sampling (ratio ≤ 1 ⇒ within the 6q²m̄ bound).  "
        "Bottom rows: partition pair loads over the m/s² expectation."
    )
    return table


def experiment_e9() -> ExperimentTable:
    table = ExperimentTable(
        name="E9 upper/lower exponent ladder",
        description="Theorem 1.1 exponent vs the Ω̃(n^{(p−2)/p}) lower bound.",
    )
    for p in (4, 5, 6, 8, 10, 14, 20):
        table.add(
            p=p,
            upper=round(max(0.75, p / (p + 2)), 4),
            lower=round((p - 2) / p, 4),
            gap=round(bounds.optimality_gap(0, p), 4),
        )
    table.notes.append("The gap closes as p grows (§5 of the paper).")
    return table


def sweep_report(result) -> str:
    """Render a :class:`~repro.analysis.sweeps.SweepResult` as markdown.

    One detail table per workload family, a cross-family summary table,
    and a cache-accounting footer (the sweep runner's cache hit/miss
    counters are part of the report so batch jobs can confirm reuse).
    """
    sections = [table.to_markdown() for table in result.tables()]
    sections.append(
        f"cache: {result.cache_hits} hit(s), {result.cache_misses} miss(es)"
        + (f" in {result.cache_dir}" if result.cache_dir else " (caching disabled)")
        + f"; total wall {result.total_wall_seconds:.2f}s\n"
    )
    return "\n".join(sections)


def main() -> None:
    sizes = [64, 96, 128, 160]
    sections: List[ExperimentTable] = []
    print("running E1/E2 (CONGEST sweeps)...", file=sys.stderr)
    sections.extend(experiment_e1_e2(sizes))
    print("running E3 (CONGESTED CLIQUE)...", file=sys.stderr)
    sections.extend(experiment_e3())
    print("running E4 (baselines)...", file=sys.stderr)
    sections.append(experiment_e4(sizes[:3]))
    print("running E5 (decomposition)...", file=sys.stderr)
    sections.append(experiment_e5())
    print("running E6 (ARB-LIST)...", file=sys.stderr)
    sections.append(experiment_e6())
    print("running E7 (Lemma 2.7)...", file=sys.stderr)
    sections.append(experiment_e7())
    sections.append(experiment_e9())
    for table in sections:
        print(table.to_markdown())


if __name__ == "__main__":
    main()
