"""Batched sweep runner: grid specs → cached, parallel listing runs.

This module is the batch layer over the single-run API
(:func:`repro.list_cliques`): you describe a grid —
workload families × sizes × clique sizes × variants — and it

1. expands the grid into :class:`RunSpec` cells (skipping invalid
   combinations such as the ``k4`` variant with p ≠ 4),
2. answers each cell from a JSON result cache keyed by a hash of the
   spec (same spec ⇒ same result, because workloads are seeded and the
   simulators are deterministic),
3. fans the remaining cells out over a ``multiprocessing`` pool,
4. verifies every run against sequential ground truth (unless disabled),
5. aggregates everything into per-workload tables rendered through
   :func:`repro.analysis.report.sweep_report`.

The CLI front-end is ``python -m repro.cli sweep``; the benchmarks in
``benchmarks/bench_congest_listing.py`` and ``benchmarks/bench_k4.py``
drive the same entry points.

>>> from repro.analysis.sweeps import SweepSpec, run_sweep
>>> spec = SweepSpec(workloads=["sparse"], sizes=[24], ps=[3], verify=False)
>>> result = run_sweep(spec)
>>> [row["workload"] for row in result.rows]
['sparse']
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import ExperimentTable
from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.core.congested_clique_listing import list_cliques_congested_clique
from repro.core.listing import default_parameters, list_cliques_congest
from repro.core.params import AlgorithmParameters, GENERIC_VARIANT, K4_VARIANT
from repro.workloads import create_workload

# Bump when the row schema or run semantics change; stale cache entries
# keyed under an older format are then simply never hit again.
# 2: degeneracy orientation adopted the deterministic lowest-id
#    tie-break (per-node out-degrees, and with them measured loads and
#    round counts, can differ from format-1 runs).
# 3: the routing planes landed — the congested-clique driver now
#    *executes* the §2.4.3 fan-out (batch plane by default) instead of
#    only charging analytic loads, and new stats (n, messages) appear on
#    the learn_edges phase; format-2 rows predate that execution.
# 4: the streaming subsystem landed — the stream_* families joined the
#    registry (their instances are defined by replaying an update
#    stream), and graph construction moved to the bulk mutators
#    (`Graph.add_edges`).  Edge sets are unchanged, but format-3 rows
#    predate the replay-defined instance contract the differential
#    suite now certifies, so they are retired rather than trusted.
# 5: the parallel plane landed and `algo_overrides` now reach the
#    congested-clique model too (previously silently ignored there);
#    format-4 rows with a non-empty `extra` under that model could
#    reflect defaults rather than the requested overrides.
# 6: the fault-injection plane landed: a `faults` override reaches the
#    key only through its repr (`default=str`), and faulted rows carry
#    tagged recovery rounds in their totals — format-5 rows were
#    computed by drivers without the healing seam, so they are retired
#    rather than mixed with fault-aware rows.
# 7: columnar clique tables became the canonical result type: runs now
#    verify and count through the frozen `(count, p)` table instead of
#    materialized frozensets, and the `materialize` knob joined the spec
#    (and thus the key).  Numbers are identical, but format-6 rows were
#    produced before the table differential certified that, so they are
#    retired rather than grandfathered.
# 8: the topology axis landed: the `topology` overlay spec joined the
#    RunSpec (and thus the key), and every row now carries a topology-
#    aware `makespan` next to its uniform `rounds`.  Clique rounds are
#    unchanged, but format-7 rows predate the makespan column, so they
#    are retired rather than patched.
CACHE_FORMAT = 8

WorkloadLike = Union[str, Tuple[str, Mapping[str, Any]]]


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully-determined cell of a sweep grid.

    Everything that influences the run's outcome is part of the spec —
    and therefore part of the cache key.  ``params`` and ``extra`` are
    stored as sorted item tuples so the dataclass stays hashable and
    picklable for the multiprocessing pool.
    """

    workload: str
    params: Tuple[Tuple[str, Any], ...]
    n: int
    p: int
    variant: Optional[str]
    model: str
    seed: int
    verify: bool
    extra: Tuple[Tuple[str, Any], ...] = ()
    materialize: bool = False
    topology: Optional[str] = None

    def cache_key(self) -> str:
        """Stable content hash identifying this run in the cache."""
        payload = json.dumps(
            {
                "format": CACHE_FORMAT,
                "workload": self.workload,
                "params": list(self.params),
                "n": self.n,
                "p": self.p,
                "variant": self.variant,
                "model": self.model,
                "seed": self.seed,
                "verify": self.verify,
                "extra": list(self.extra),
                "materialize": self.materialize,
                "topology": self.topology,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]


def _freeze(mapping: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted((str(k), v) for k, v in mapping.items()))


@dataclass
class SweepSpec:
    """A sweep grid: workloads × sizes × clique sizes × variants.

    Parameters
    ----------
    workloads:
        Family names, or ``(name, params)`` pairs for parameterized
        families, e.g. ``["er", ("caveman", {"intra_p": 0.7})]``.
    sizes / ps / variants:
        Grid axes.  ``variants`` entries are ``None`` (paper default per
        p), ``"generic"`` or ``"k4"``; ``"k4"`` cells with p ≠ 4 are
        dropped from the grid rather than erroring.
    model:
        ``"congest"`` or ``"congested-clique"`` (variants apply only to
        the former).
    seed:
        Base seed; workload instances further mix in family and n.
    verify:
        Check every run against sequential ground-truth enumeration.
    algo_overrides:
        Extra :class:`~repro.core.params.AlgorithmParameters` fields
        (e.g. ``{"stop_scale": 0.5}``) applied to every congest run.
    materialize:
        When ``True``, count/verify runs through materialized python
        frozensets (the legacy path).  Default ``False`` keeps every
        run on the columnar :class:`~repro.graphs.table.CliqueTable`
        path — identical numbers, no per-clique python objects.
    topologies:
        Overlay-topology axis (:mod:`repro.congest.topology` spec
        strings, e.g. ``["clique", "star", "spanner:3"]``; ``None`` is
        the uniform-clique default).  Every entry multiplies the grid;
        specs are normalized at expansion, and rows carry a topology-
        aware ``makespan`` next to their uniform ``rounds``.
    """

    workloads: Sequence[WorkloadLike]
    sizes: Sequence[int]
    ps: Sequence[int]
    variants: Sequence[Optional[str]] = (None,)
    model: str = "congest"
    seed: int = 0
    verify: bool = True
    algo_overrides: Mapping[str, Any] = field(default_factory=dict)
    materialize: bool = False
    topologies: Sequence[Optional[str]] = (None,)

    def runs(self) -> List[RunSpec]:
        """Expand the grid into its valid cells, in deterministic order."""
        for variant in self.variants:
            if variant not in (None, GENERIC_VARIANT, K4_VARIANT):
                raise ValueError(
                    f"unknown variant {variant!r}; use None, "
                    f"{GENERIC_VARIANT!r} or {K4_VARIANT!r}"
                )
        from repro.congest.topology import parse_topology

        # Normalize every topology entry to its canonical spec string so
        # "ring@bw=1" and "ring" key the cache identically.
        topologies: List[Optional[str]] = []
        for entry in self.topologies:
            topologies.append(
                None if entry is None else parse_topology(entry).spec()
            )
        cells: List[RunSpec] = []
        for entry in self.workloads:
            name, params = (entry, {}) if isinstance(entry, str) else entry
            # Fail fast — unknown families/params or unusable param values
            # (a tiny probe instance) — before any fan-out work is done.
            try:
                create_workload(name, **dict(params)).instance(4, seed=0)
            except (TypeError, ValueError):
                raise
            except Exception as exc:
                raise ValueError(
                    f"workload {name!r} with params {dict(params)} cannot "
                    f"build an instance: {exc}"
                ) from exc
            for n in self.sizes:
                for p in self.ps:
                    for variant in self.variants:
                        if variant == "k4" and p != 4:
                            continue
                        for topology in topologies:
                            cells.append(
                                RunSpec(
                                    workload=name,
                                    params=_freeze(params),
                                    n=int(n),
                                    p=int(p),
                                    variant=variant,
                                    model=self.model,
                                    seed=self.seed,
                                    verify=self.verify,
                                    extra=_freeze(self.algo_overrides),
                                    materialize=self.materialize,
                                    topology=topology,
                                )
                            )
        return cells


# ----------------------------------------------------------------------
# Single-run execution (top-level so the pool can pickle it)
# ----------------------------------------------------------------------
def _congest_theory(n: int, p: int, variant: str) -> float:
    """The paper curve a CONGEST run is compared against in the report.

    Theorem 1.2 for the K4 variant, Theorem 1.1 for p ≥ 4; at p = 3 the
    pipeline runs as an expander-decomposition triangle lister, whose
    driver stops at the n^{3/4} witness — the Izumi–Le Gall exponent.
    """
    if variant == "k4":
        return bounds.this_paper_k4(n)
    if p == 3:
        return bounds.izumi_legall_triangle(n, polylog=0.0)
    return bounds.this_paper_congest(n, p)


def execute_run(spec: RunSpec) -> Dict[str, Any]:
    """Run one grid cell and return its JSON-serializable result row."""
    workload = create_workload(spec.workload, **dict(spec.params))
    graph = workload.instance(spec.n, seed=spec.seed)
    start = time.perf_counter()
    if spec.model == "congest":
        params = default_parameters(spec.p, spec.variant)
        if spec.extra:
            params = params.with_(**dict(spec.extra))
        if spec.topology is not None:
            params = params.with_(topology=spec.topology)
        result = list_cliques_congest(graph, spec.p, params=params, seed=spec.seed)
        variant = params.variant
        theory = _congest_theory(spec.n, spec.p, variant)
    elif spec.model in ("congested-clique", "congested_clique"):
        params = AlgorithmParameters(p=spec.p)
        if spec.extra:
            params = params.with_(**dict(spec.extra))
        if spec.topology is not None:
            params = params.with_(topology=spec.topology)
        result = list_cliques_congested_clique(
            graph, spec.p, params=params, seed=spec.seed
        )
        variant = "-"
        theory = bounds.this_paper_congested_clique(spec.n, spec.p, graph.num_edges)
    else:
        raise ValueError(f"unknown model {spec.model!r}")
    wall = time.perf_counter() - start
    if spec.verify:
        if spec.materialize:
            # Legacy path: verify against a materialized frozenset truth.
            from repro.graphs.cliques import enumerate_cliques

            truth = enumerate_cliques(graph, spec.p)
            verify_listing(graph, result, truth=truth).raise_if_failed()
        else:
            # Table differential: verify_listing compares canonical
            # (count, p) matrices directly — no python sets built.
            verify_listing(graph, result).raise_if_failed()

    phase_rounds: Dict[str, float] = {}
    for phase in result.ledger.phases():
        phase_rounds[phase.name] = phase_rounds.get(phase.name, 0.0) + phase.rounds
    return {
        "workload": spec.workload,
        "workload_params": dict(spec.params),
        "n": spec.n,
        "m": graph.num_edges,
        "p": spec.p,
        "variant": variant,
        "model": spec.model,
        "seed": spec.seed,
        "verified": spec.verify,
        "rounds": result.rounds,
        "makespan": result.makespan,
        "topology": spec.topology or "clique",
        "cliques": len(result.cliques) if spec.materialize else result.num_cliques,
        "theory": theory,
        "ratio": result.rounds / theory if theory else float("inf"),
        "wall_seconds": wall,
        "phases": phase_rounds,
        "stats": {k: v for k, v in result.stats.items()},
        "cached": False,
    }


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class SweepCache:
    """One JSON file per run, named by the spec hash, written atomically."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.cache_key()}.json"

    def get(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        path = self.path(spec)
        try:
            row = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return row

    def put(self, spec: RunSpec, row: Mapping[str, Any]) -> None:
        path = self.path(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(dict(row), indent=1, sort_keys=True))
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """All result rows of one sweep, plus cache accounting."""

    rows: List[Dict[str, Any]]
    cache_hits: int = 0
    cache_misses: int = 0
    cache_dir: Optional[str] = None

    @property
    def total_rounds(self) -> float:
        return sum(row["rounds"] for row in self.rows)

    @property
    def total_wall_seconds(self) -> float:
        return sum(row["wall_seconds"] for row in self.rows)

    def tables(self) -> List[ExperimentTable]:
        """Per-workload detail tables plus an overall summary table.

        Grouping is by (family, params), not family name alone, so two
        entries of the same family with different parameters get separate,
        correctly-labelled tables.
        """
        by_group: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
        for row in self.rows:
            params_label = json.dumps(row["workload_params"], sort_keys=True)
            by_group.setdefault((row["workload"], params_label), []).append(row)
        # Only annotate names with params when a family appears more than once.
        family_counts: Dict[str, int] = {}
        for workload, _ in by_group:
            family_counts[workload] = family_counts.get(workload, 0) + 1

        tables: List[ExperimentTable] = []
        summary = ExperimentTable(
            name="sweep summary",
            description="Per-workload aggregates over the whole grid.",
        )
        # The topology / makespan columns only appear when the sweep
        # actually exercises a non-default overlay, so plain clique
        # sweeps render exactly as before.
        show_topology = any(
            row.get("topology", "clique") != "clique" for row in self.rows
        )
        for workload, params_label in sorted(by_group):
            rows = sorted(
                by_group[(workload, params_label)],
                key=lambda r: (r["n"], r["p"], r.get("topology", "clique")),
            )
            label = workload
            if family_counts[workload] > 1:
                label = f"{workload} {params_label}"
            table = ExperimentTable(
                name=f"workload {label}",
                description=(
                    f"Rounds vs the paper bound, model={rows[0]['model']}, "
                    f"params={rows[0]['workload_params'] or 'defaults'}."
                ),
            )
            for row in rows:
                cells: Dict[str, Any] = dict(
                    n=row["n"],
                    m=row["m"],
                    p=row["p"],
                    variant=row["variant"],
                )
                if show_topology:
                    cells["topology"] = row.get("topology", "clique")
                cells.update(
                    rounds=round(row["rounds"], 1),
                )
                if show_topology:
                    cells["makespan"] = round(row.get("makespan", row["rounds"]), 1)
                cells.update(
                    theory=round(row["theory"], 1),
                    ratio=round(row["ratio"], 2),
                    cliques=row["cliques"],
                    wall_s=round(row["wall_seconds"], 3),
                    cached="yes" if row.get("cached") else "no",
                )
                table.add(**cells)
            tables.append(table)
            summary_cells: Dict[str, Any] = dict(
                workload=label,
                runs=len(rows),
                total_rounds=round(sum(r["rounds"] for r in rows), 1),
            )
            if show_topology:
                summary_cells["total_makespan"] = round(
                    sum(r.get("makespan", r["rounds"]) for r in rows), 1
                )
            summary_cells.update(
                worst_ratio=round(max(r["ratio"] for r in rows), 2),
                total_cliques=sum(r["cliques"] for r in rows),
                wall_s=round(sum(r["wall_seconds"] for r in rows), 3),
            )
            summary.add(**summary_cells)
        tables.append(summary)
        return tables

    def to_markdown(self) -> str:
        from repro.analysis.report import sweep_report

        return sweep_report(self)

    def to_json(self) -> str:
        return json.dumps(
            {
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_dir": self.cache_dir,
                "rows": self.rows,
            },
            indent=1,
            sort_keys=True,
        )


def resolve_jobs(jobs: int, num_tasks: int) -> int:
    """0 → auto (bounded by cores and tasks); otherwise clamp to tasks."""
    if jobs <= 0:
        jobs = min(8, os.cpu_count() or 1)
    return max(1, min(jobs, num_tasks))


def _cell_payload(cell: RunSpec) -> dict:
    """A ``RunSpec`` as the plain field dict the ``sweep_cell`` remote
    task rebuilds (see :func:`repro.dist.registry.sweep_cell`)."""
    return {
        "workload": cell.workload,
        "params": cell.params,
        "n": cell.n,
        "p": cell.p,
        "variant": cell.variant,
        "model": cell.model,
        "seed": cell.seed,
        "verify": cell.verify,
        "extra": cell.extra,
        "materialize": cell.materialize,
        "topology": cell.topology,
    }


def run_sweep(
    spec: SweepSpec,
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    hosts: Optional[Sequence[str]] = None,
) -> SweepResult:
    """Execute a sweep grid with caching and fan-out.

    Parameters
    ----------
    spec:
        The grid to run.
    cache_dir:
        Directory for the per-run JSON cache (``None`` disables caching).
    jobs:
        Worker processes for the uncached cells; ``1`` runs inline in
        this process, ``0`` picks an automatic level.  Note: pool
        workers are daemonic, so cells that request the parallel
        routing plane (``algo_overrides={"plane": "parallel", ...}``)
        fall back to inline shard execution inside a ``jobs > 1``
        fan-out — run such sweeps with ``jobs=1`` to give the shard
        executor the machine.
    hosts:
        Cluster host specs (``repro.dist``).  When set, the uncached
        cells dispatch as ``sweep_cell`` tasks across the cluster
        instead of a local multiprocessing pool — ``jobs`` is ignored.
        Each cell row comes back exactly as :func:`execute_run` would
        produce it locally (cells are independent, results land in grid
        order), so caching and reporting are oblivious to where the
        cells ran.
    """
    cells = spec.runs()
    cache = SweepCache(cache_dir) if cache_dir is not None else None
    rows: List[Optional[Dict[str, Any]]] = [None] * len(cells)

    pending: List[Tuple[int, RunSpec]] = []
    for index, cell in enumerate(cells):
        cached = cache.get(cell) if cache else None
        if cached is not None:
            cached["cached"] = True
            rows[index] = cached
        else:
            pending.append((index, cell))

    if pending:
        if hosts is not None:
            from repro.dist import get_cluster

            cluster = get_cluster(tuple(hosts))
            computed = cluster.map_task(
                "sweep_cell",
                {},
                [(_cell_payload(cell),) for _, cell in pending],
            )
        else:
            workers = resolve_jobs(jobs, len(pending))
            if workers > 1:
                with multiprocessing.Pool(workers) as pool:
                    computed = pool.map(
                        execute_run, [cell for _, cell in pending]
                    )
            else:
                computed = [execute_run(cell) for _, cell in pending]
        for (index, cell), row in zip(pending, computed):
            rows[index] = row
            if cache:
                cache.put(cell, row)

    return SweepResult(
        rows=[row for row in rows if row is not None],
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(cells),
        cache_dir=str(cache.root) if cache else None,
    )
