"""Exponent fitting: comparing measured round counts to theory curves.

The theorems predict power laws (rounds ≈ C·n^e up to polylog factors).
Given a sweep of (n, rounds) measurements, :func:`fit_exponent` performs
an ordinary least-squares fit in log–log space and returns the slope with
its residual, which EXPERIMENTS.md reports next to the theoretical
exponent.  At the finite n of a simulation the polylog factors inflate
fitted slopes (d log(polylog)/d log n > 0), so the comparison is always
"measured slope vs theory slope, with polylog caveat" — see DESIGN.md §6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ExponentFit:
    """Least-squares power-law fit rounds ≈ exp(intercept)·n^slope."""

    slope: float
    intercept: float
    r_squared: float
    points: int

    def predict(self, n: float) -> float:
        return math.exp(self.intercept) * (n**self.slope)


def fit_exponent(sizes: Sequence[float], values: Sequence[float]) -> ExponentFit:
    """Fit a power law through (sizes, values) in log–log space.

    Raises
    ------
    ValueError
        With fewer than 2 points or non-positive data.
    """
    if len(sizes) != len(values):
        raise ValueError("sizes and values must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit an exponent")
    if any(s <= 0 for s in sizes) or any(v <= 0 for v in values):
        raise ValueError("power-law fit needs positive data")
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(values, dtype=float))
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ExponentFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        points=len(sizes),
    )


def theory_comparison(
    sizes: Sequence[float],
    measured: Sequence[float],
    theory: Callable[[float], float],
) -> Dict[str, float]:
    """Summary of measured-vs-theory over a sweep.

    Returns the fitted exponents of both series and the max/min ratio of
    measured to theory (a flat ratio means the shapes agree).
    """
    measured_fit = fit_exponent(sizes, measured)
    theory_values = [theory(s) for s in sizes]
    theory_fit = fit_exponent(sizes, theory_values)
    ratios = [m / t for m, t in zip(measured, theory_values)]
    return {
        "measured_slope": measured_fit.slope,
        "theory_slope": theory_fit.slope,
        "slope_gap": measured_fit.slope - theory_fit.slope,
        "ratio_min": min(ratios),
        "ratio_max": max(ratios),
        "ratio_spread": max(ratios) / min(ratios),
        "r_squared": measured_fit.r_squared,
    }


def crossover_size(
    sizes: Sequence[float], series_a: Sequence[float], series_b: Sequence[float]
) -> float:
    """First size where series_a drops to or below series_b (inf if never).

    Used for the "where does ours start winning" rows of E4.
    """
    for s, a, b in zip(sizes, series_a, series_b):
        if a <= b:
            return float(s)
    return math.inf
