"""Output verification: the correctness gate of every experiment.

A distributed listing is correct iff (a) **complete** — the union of all
per-node outputs contains every Kp of the input graph — and (b) **sound**
— every output is a real Kp.  These checks run inside tests and inside
every benchmark before timings are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set

from repro.core.result import ListingResult
from repro.graphs.cliques import clique_table, enumerate_cliques
from repro.graphs.graph import Graph
from repro.graphs.properties import is_clique

Clique = FrozenSet[int]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying one listing result against a graph."""

    complete: bool
    sound: bool
    expected: int
    produced: int
    missing: FrozenSet[Clique] = frozenset()
    spurious: FrozenSet[Clique] = frozenset()

    @property
    def ok(self) -> bool:
        return self.complete and self.sound

    def raise_if_failed(self) -> None:
        if not self.sound:
            raise AssertionError(
                f"unsound listing: {len(self.spurious)} spurious cliques, "
                f"e.g. {next(iter(self.spurious))}"
            )
        if not self.complete:
            raise AssertionError(
                f"incomplete listing: {len(self.missing)} of {self.expected} "
                f"cliques missing, e.g. {next(iter(self.missing))}"
            )


def verify_listing(
    graph: Graph,
    result: ListingResult,
    truth: Optional[Set[Clique]] = None,
    backend: str = "auto",
) -> VerificationReport:
    """Verify completeness and soundness of a listing result.

    Passing a precomputed ``truth`` set avoids re-enumeration when many
    algorithms run on the same graph (the benchmark harness does this)
    and forces the legacy set-based comparison.  Without it, the check
    compares canonical clique *tables* directly — ``np.array_equal`` on
    the sorted rows in the common all-correct case, vectorized row set
    difference otherwise — so no frozensets are built unless there is an
    actual discrepancy to report.  ``backend`` selects the ground-truth
    kernel (csr on large graphs by default), which is what keeps
    verification from dominating sweep wall-time.
    """
    if truth is None:
        expected_table = clique_table(graph, result.p, backend=backend)
        produced_table = result.table()
        if expected_table == produced_table:
            return VerificationReport(
                complete=True,
                sound=True,
                expected=len(expected_table),
                produced=len(produced_table),
            )
        missing = expected_table.difference(produced_table).as_frozenset()
        spurious = produced_table.difference(expected_table).as_frozenset()
        expected_count = len(expected_table)
        produced_count = len(produced_table)
    else:
        produced = result.cliques
        missing = frozenset(truth - produced)
        spurious = frozenset(produced - truth)
        expected_count = len(truth)
        produced_count = len(produced)
    # Structural double-check: a "spurious" clique that is in fact a real
    # clique of the graph would indicate a bug in the truth enumeration
    # itself — fail loudly rather than report a soundness violation.
    for clique in spurious:
        if len(clique) == result.p and is_clique(graph, set(clique)):
            raise AssertionError(
                f"truth enumeration missed a real clique {sorted(clique)}"
            )
    return VerificationReport(
        complete=not missing,
        sound=not spurious,
        expected=expected_count,
        produced=produced_count,
        missing=missing,
        spurious=spurious,
    )


def verify_per_node_consistency(result: ListingResult) -> bool:
    """Check that ``result.cliques`` equals the union of per-node outputs."""
    union: Set[Clique] = set()
    for cliques in result.per_node.values():
        union |= cliques
    return union == result.cliques


def verify_partition_bound(
    num_edges: int, num_parts: int, max_pair_load: int, slack: float = 6.0
) -> bool:
    """The Lemma 2.7-style balance check: max pair load ≤ slack·m/s² + O(1).

    The +log term absorbs integrality at small scales; the benchmark
    reports the raw ratio as well.
    """
    import math

    expected = num_edges / (num_parts * num_parts)
    return max_pair_load <= slack * expected + 8 * math.log2(max(2, num_edges + 2))
