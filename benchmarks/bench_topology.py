"""Topology plane: spanner sparsification and overlay makespans.

The ISSUE-10 acceptance floor: on a dense adversarial instance, the
Parter–Yogev-style spanner overlay must *measurably* cut the charged
bandwidth of the congested-clique driver's routed fan-out — the dominant
``learn_edges`` pattern lights up ``pattern_pairs`` directed clique links
under direct routing but crosses only ``links_used`` provisioned hub
links on the spanner.  The ``pattern_pairs / links_used`` ratio is the
gated number (floor in ``scripts/check_bench.py``); the raw pattern
accounting, the resulting makespans, and the overlay grid alongside it
are recorded for the trajectory table.

Correctness before accounting: every overlay run must produce the same
listings and byte-identical uniform rounds as the bare run — overlays
re-price time, never the algorithm.
"""

from __future__ import annotations

from repro.congest.topology import Topology
from repro.core.congested_clique_listing import list_cliques_congested_clique
from repro.core.params import AlgorithmParameters
from repro.workloads import create_workload

N = 256
P = 4
SEED = 0

#: The sweep of overlays the makespan grid records (clique last as the
#: baseline the others are compared against).
OVERLAYS = ("star", "ring", "chain", "grid", "spanner", "clique")


def _instance():
    # The adversarial family is the dense worst case: a planted
    # near-clique core plus background noise, so the fan-out pattern
    # touches a quadratic share of the directed pairs.
    return create_workload("adversarial").instance(N, seed=SEED)


def _run(g, topology=None):
    params = AlgorithmParameters(p=P, topology=topology)
    return list_cliques_congested_clique(g, P, params=params, seed=SEED)


def _rounds_rows(result):
    return [(ph.name, ph.rounds) for ph in result.ledger.phases()]


def test_spanner_bandwidth_reduction(benchmark, bench_env):
    g = _instance()
    bare = _run(g)
    spanner = _run(g, topology="spanner")

    # Overlays never change the algorithm: identical listings, charges.
    assert spanner.cliques == bare.cliques
    assert _rounds_rows(spanner) == _rounds_rows(bare)

    routed = [
        ph for ph in spanner.ledger.phases() if "pattern_pairs" in ph.stats
    ]
    assert routed, "expected overlay-priced routed phases"
    # The dominant fan-out pattern: most pairs under direct routing.
    dominant = max(routed, key=lambda ph: ph.stats["pattern_pairs"])
    pairs = dominant.stats["pattern_pairs"]
    links = dominant.stats["links_used"]
    compiled = Topology(kind="spanner").compile(g.num_nodes)

    def record():
        return {"pattern_pairs": pairs, "links_used": links}

    benchmark.pedantic(record, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "instance": f"adversarial n={N} seed={SEED}",
            "p": P,
            "phase": dominant.name,
            "cliques": spanner.num_cliques,
            "rounds": round(spanner.rounds, 1),
            "makespan_clique": round(bare.makespan, 1),
            "makespan_spanner": round(spanner.makespan, 1),
            # The gated pair: directed clique links a direct routing of
            # the pattern needs vs spanner links actually provisioned+used.
            "pattern_pairs": pairs,
            "links_used": links,
            "bandwidth_reduction": round(pairs / links, 1),
            "provisioned_links": compiled.num_links(),
            "clique_links": g.num_nodes * (g.num_nodes - 1),
            "max_link_words": dominant.stats["max_link_words"],
            "overlay_hops": dominant.stats["overlay_hops"],
            **bench_env,
        }
    )
    # The >= 10x floor is enforced by scripts/check_bench.py against
    # these recorded scalars (measured margin is several-fold beyond it).


def test_overlay_makespan_grid(benchmark, bench_env):
    g = _instance()
    bare = _run(g)
    makespans = {}
    for kind in OVERLAYS:
        result = _run(g, topology=Topology(kind=kind))
        assert result.cliques == bare.cliques
        assert _rounds_rows(result) == _rounds_rows(bare)
        makespans[kind] = round(result.makespan, 1)

    def record():
        return makespans

    benchmark.pedantic(record, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "instance": f"adversarial n={N} seed={SEED}",
            "p": P,
            "rounds": round(bare.rounds, 1),
            **{f"makespan_{kind}": value for kind, value in makespans.items()},
            **bench_env,
        }
    )
    # The clique overlay must price exactly the uniform rounds and every
    # sparser overlay pays congestion on top; the chain's linear diameter
    # makes it at least as congested as the ring that shortcuts it.
    assert makespans["clique"] == round(bare.rounds, 1)
    assert makespans["clique"] == min(makespans.values())
    assert makespans["chain"] >= makespans["ring"]
