"""E9: measured rounds vs the Ω̃(n^{(p−2)/p}) lower bound [Fischer et al.].

Regenerates the §5 discussion: the gap between Theorem 1.1's exponent
max(3/4, p/(p+2)) and the listing lower bound (p−2)/p closes as p grows.
Reports the analytic exponent ladder and the measured rounds sitting
between the two curves on the bench workloads.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.core.listing import list_cliques_congest
from repro.graphs.generators import erdos_renyi


def test_exponent_gap_ladder(benchmark):
    def compute():
        return {
            p: {
                "upper": round(max(0.75, p / (p + 2)), 4),
                "lower": round((p - 2) / p, 4),
                "gap": round(bounds.optimality_gap(0, p), 4),
            }
            for p in (4, 5, 6, 8, 10, 14, 20)
        }

    ladder = benchmark.pedantic(compute, iterations=1, rounds=1)
    benchmark.extra_info["ladder"] = ladder
    gaps = [row["gap"] for row in ladder.values()]
    assert gaps == sorted(gaps, reverse=True), "gap must shrink as p grows"


@pytest.mark.parametrize("p", [4, 5])
def test_measured_between_bounds(benchmark, p):
    """Measured rounds stay above the (polylog-free) lower-bound curve and
    the run is verified complete — the sanity sandwich of E9."""
    n = 96
    g = erdos_renyi(n, 0.5, seed=p)

    def run():
        result = list_cliques_congest(g, p, variant="generic", seed=p)
        verify_listing(g, result).raise_if_failed()
        return result.rounds

    rounds = benchmark.pedantic(run, iterations=1, rounds=1)
    lower = bounds.fischer_listing_lower_bound(n, p)
    benchmark.extra_info.update(
        {
            "n": n,
            "measured_rounds": round(rounds, 1),
            "lower_bound": round(lower, 1),
            "upper_theory": round(bounds.this_paper_congest(n, p), 1),
        }
    )
    assert rounds >= lower * 0.1  # measured cost respects the lower-bound scale
