"""E3 (Theorem 1.3): CONGESTED CLIQUE rounds vs m — Θ̃(1 + m/n^{1+2/p}).

Two claims to regenerate: (a) rounds are O(1) below the knee
m = n^{1+2/p} and grow ~linearly in m above it; (b) the sparsity-aware
algorithm beats the density-blind general baseline on sparse inputs.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import fit_exponent
from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.baselines.cc_general import general_congested_clique_listing
from repro.core.congested_clique_listing import list_cliques_congested_clique
from repro.graphs.generators import gnm_random_graph


@pytest.mark.parametrize("p", [3, 4, 5])
def test_cc_rounds_vs_m(benchmark, cc_sizes, p):
    n = cc_sizes[-1]
    knee = n ** (1.0 + 2.0 / p)
    edge_counts = [max(8, int(knee * f)) for f in (0.1, 0.5, 1.0, 2.0)]
    # Cap the densest point: beyond ~60% density the ground-truth clique
    # count (not the algorithm) dominates bench wall-clock.
    max_edges = int(0.6 * n * (n - 1) / 2)
    edge_counts = sorted({min(m, max_edges) for m in edge_counts})
    rows = {}

    def sweep():
        for m in edge_counts:
            g = gnm_random_graph(n, m, seed=m)
            result = list_cliques_congested_clique(g, p, seed=m)
            verify_listing(g, result).raise_if_failed()
            rows[m] = {
                "rounds": result.rounds,
                "theory": bounds.this_paper_congested_clique(n, p, m),
            }
        return rows

    benchmark.pedantic(sweep, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "n": n,
            "knee_m": round(knee),
            "rows": {str(m): {k: round(v, 2) for k, v in r.items()} for m, r in rows.items()},
        }
    )
    # Shape gates: monotone in m, and the dense end costs strictly more
    # than the sparse end (the knee exists).
    measured = [rows[m]["rounds"] for m in edge_counts]
    assert all(a <= b + 1e-9 for a, b in zip(measured, measured[1:]))
    assert measured[-1] > measured[0]


def test_cc_sparsity_aware_beats_general(benchmark, cc_sizes):
    n, p = cc_sizes[-1], 4
    sparse_m = n  # far below the knee n^{1.5}

    def run():
        g = gnm_random_graph(n, sparse_m, seed=1)
        ours = list_cliques_congested_clique(g, p, seed=1)
        general = general_congested_clique_listing(g, p)
        verify_listing(g, ours).raise_if_failed()
        verify_listing(g, general).raise_if_failed()
        return ours.rounds, general.rounds

    ours_rounds, general_rounds = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update({"ours": ours_rounds, "general": general_rounds})
    assert ours_rounds < general_rounds
