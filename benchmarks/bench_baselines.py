"""E4: head-to-head K4 round comparison — ours vs Eden-style vs broadcasts.

Regenerates the paper's positioning table: Theorem 1.2's Õ(n^{2/3}) K4
against Eden et al.'s O(n^{5/6+o(1)}) and the trivial bounds, measured on
identical workloads with identical accounting rules, plus the analytic
curves for the asymptotic picture.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import crossover_size
from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.baselines.broadcast import broadcast_listing, neighborhood_broadcast_listing
from repro.baselines.eden import eden_k4_listing
from repro.core.listing import list_cliques_congest
from repro.graphs.cliques import enumerate_cliques
from repro.graphs.generators import erdos_renyi

DENSITY = 0.5


def test_k4_baseline_showdown(benchmark, congest_sizes):
    rows = {}

    def sweep():
        for n in congest_sizes:
            g = erdos_renyi(n, DENSITY, seed=n)
            truth = enumerate_cliques(g, 4)
            ours = list_cliques_congest(g, 4, variant="k4", seed=n)
            eden = eden_k4_listing(g, seed=n)
            oriented = broadcast_listing(g, 4)
            neighborhood = neighborhood_broadcast_listing(g, 4)
            for result in (ours, eden, oriented, neighborhood):
                verify_listing(g, result, truth=truth).raise_if_failed()
            rows[n] = {
                "ours": ours.rounds,
                "eden": eden.rounds,
                "broadcast_orientation": oriented.rounds,
                "broadcast_neighborhood": neighborhood.rounds,
            }
        return rows

    benchmark.pedantic(sweep, iterations=1, rounds=1)
    sizes = sorted(rows)
    benchmark.extra_info.update(
        {
            "measured": {
                str(n): {k: round(v, 1) for k, v in rows[n].items()} for n in sizes
            },
            "analytic_exponents": {
                "ours_k4": round(2 / 3, 3),
                "eden_k4": round(5 / 6, 3),
                "trivial": 1.0,
            },
            "measured_crossover_ours_vs_eden": crossover_size(
                sizes, [rows[n]["ours"] for n in sizes], [rows[n]["eden"] for n in sizes]
            ),
        }
    )


def test_analytic_ordering_asymptotic(benchmark):
    """At large n the analytic curves order as the paper claims."""

    def check():
        n = 10**6
        assert bounds.this_paper_k4(n) < bounds.eden_k4(n) < bounds.trivial_broadcast(n)
        assert bounds.this_paper_congest(n, 5) < bounds.eden_k5(n)
        for p in (6, 7, 8):
            assert bounds.this_paper_congest(n, p) < bounds.trivial_broadcast(n)
            assert bounds.fischer_listing_lower_bound(n, p) < bounds.this_paper_congest(n, p)
        return True

    assert benchmark.pedantic(check, iterations=1, rounds=1)
