"""E4: head-to-head K4 round comparison — ours vs Eden-style vs broadcasts.

Regenerates the paper's positioning table: Theorem 1.2's Õ(n^{2/3}) K4
against Eden et al.'s O(n^{5/6+o(1)}) and the trivial bounds, measured on
identical workloads with identical accounting rules, plus the analytic
curves for the asymptotic picture.

Our side of the table is driven through the batched sweep runner
(:mod:`repro.analysis.sweeps`) — the same grid-expansion, execution and
verification path as ``python -m repro.cli sweep`` — so the measured
rounds are the sweep runner's, not an ad-hoc loop's.  The baselines run
on the *identical* workload instances (same family, params and seed as
the sweep cells) and are verified against the same ground truth.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import crossover_size
from repro.analysis.sweeps import SweepSpec, run_sweep
from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.baselines.broadcast import broadcast_listing, neighborhood_broadcast_listing
from repro.baselines.eden import eden_k4_listing
from repro.graphs.cliques import enumerate_cliques
from repro.workloads import create_workload

DENSITY = 0.5
SEED = 0


def test_k4_baseline_showdown(benchmark, congest_sizes):
    rows = {}
    spec = SweepSpec(
        workloads=[("er", {"density": DENSITY})],
        sizes=congest_sizes,
        ps=[4],
        variants=["k4"],
        seed=SEED,
        verify=True,
    )

    def sweep():
        ours_by_n = {
            row["n"]: row["rounds"] for row in run_sweep(spec, cache_dir=None).rows
        }
        workload = create_workload("er", density=DENSITY)
        for n in congest_sizes:
            g = workload.instance(n, seed=SEED)  # the sweep cell's instance
            truth = enumerate_cliques(g, 4)
            eden = eden_k4_listing(g, seed=n)
            oriented = broadcast_listing(g, 4)
            neighborhood = neighborhood_broadcast_listing(g, 4)
            for result in (eden, oriented, neighborhood):
                verify_listing(g, result, truth=truth).raise_if_failed()
            rows[n] = {
                "ours": ours_by_n[n],
                "eden": eden.rounds,
                "broadcast_orientation": oriented.rounds,
                "broadcast_neighborhood": neighborhood.rounds,
            }
        return rows

    benchmark.pedantic(sweep, iterations=1, rounds=1)
    sizes = sorted(rows)
    benchmark.extra_info.update(
        {
            "measured": {
                str(n): {k: round(v, 1) for k, v in rows[n].items()} for n in sizes
            },
            "analytic_exponents": {
                "ours_k4": round(2 / 3, 3),
                "eden_k4": round(5 / 6, 3),
                "trivial": 1.0,
            },
            "measured_crossover_ours_vs_eden": crossover_size(
                sizes, [rows[n]["ours"] for n in sizes], [rows[n]["eden"] for n in sizes]
            ),
        }
    )


def test_analytic_ordering_asymptotic(benchmark):
    """At large n the analytic curves order as the paper claims."""

    def check():
        n = 10**6
        assert bounds.this_paper_k4(n) < bounds.eden_k4(n) < bounds.trivial_broadcast(n)
        assert bounds.this_paper_congest(n, 5) < bounds.eden_k5(n)
        for p in (6, 7, 8):
            assert bounds.this_paper_congest(n, p) < bounds.trivial_broadcast(n)
            assert bounds.fischer_listing_lower_bound(n, p) < bounds.this_paper_congest(n, p)
        return True

    assert benchmark.pedantic(check, iterations=1, rounds=1)
