"""E-stream: incremental K_p maintenance vs full recompute.

The ISSUE-4 acceptance gate: on an ER n = 2000, p_edge = 0.05 churn
stream (each batch deletes ``CHURN`` random live edges and re-inserts
the previous batch's deletions), the :class:`repro.stream.StreamEngine`
must maintain the exact triangle count ≥ 5× faster — steady-state,
per replay — than the honest alternative: mutate a plain ``Graph`` and
recount through a fresh CSR snapshot after every batch (which is what
every mutation's cache invalidation forces today).

Timing protocol (shared with bench_kernel/bench_routing): best-of-N on
both sides against the bench boxes' 3–4× run-to-run variance — and,
new in this suite, **every raw sample is recorded** in the emitted
benchmark JSON (``--benchmark-json``), so the gate's margin can be
read against the actual spread instead of a single min.  ``steady``
means the engine's baseline is already tracked (the cold tracking cost
is reported separately as ``track_cold_s``); compaction runs on its
normal ``COMPACT_EVERY`` cadence *inside* the timed window, so the
measured incremental cost is the true amortized steady state, not a
compaction-free best case.

Every timed replay is preceded by a correctness replay asserting the
maintained count equals the recomputed count after every batch.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs.cliques import count_cliques
from repro.stream import StreamEngine, UpdateBatch
from repro.workloads import create_workload

N = 2000
EDGE_P = 0.05
P = 3
BATCHES = 8
CHURN = 48
COMPACT_EVERY = 256  # one compaction every ~2.7 batches of 2*CHURN updates
REPEATS = 3  # best-of, raw samples recorded (3-4x bench-box variance)


def _instance():
    return create_workload("er", density=EDGE_P).instance(N, seed=0)


def _churn_batches(graph, seed=1):
    """Deterministic churn: delete CHURN live edges, re-insert last batch's."""
    rng = np.random.default_rng(seed)
    edges = sorted(graph.edge_set())
    previous = []
    batches = []
    for _ in range(BATCHES):
        picked = rng.choice(len(edges), size=CHURN, replace=False)
        dropped = [edges[i] for i in sorted(picked.tolist())]
        batches.append(
            UpdateBatch.concat(
                [UpdateBatch.inserts(previous), UpdateBatch.deletes(dropped)]
            )
        )
        dropped_set = set(dropped)
        edges = sorted((set(edges) - dropped_set) | set(previous))
        previous = dropped
    return batches


def test_incremental_beats_full_recompute(benchmark, bench_env):
    batches = _churn_batches(_instance())

    # Correctness before speed: one replay cross-checking every batch.
    engine = StreamEngine(_instance(), compact_every=COMPACT_EVERY)
    engine.track(P)
    shadow = _instance()
    counts = []
    for batch in batches:
        engine.apply(batch)
        ins, dels = batch.net_against(shadow.has_edge)
        shadow.remove_edges(map(tuple, dels.tolist()))
        shadow.add_edges(map(tuple, ins.tolist()))
        expected = count_cliques(shadow, P, backend="csr")
        assert engine.count(P) == expected
        counts.append(expected)

    timings = {}

    def measure():
        # Cold cost of establishing the baseline (snapshot + count).
        fresh = _instance()
        start = time.perf_counter()
        warm_engine = StreamEngine(fresh, compact_every=COMPACT_EVERY)
        warm_engine.track(P)
        track_cold_s = time.perf_counter() - start

        def incremental_replay():
            eng = StreamEngine(_instance(), compact_every=COMPACT_EVERY)
            eng.track(P)
            start = time.perf_counter()
            for batch in batches:
                eng.apply(batch)
                eng.count(P)
            return time.perf_counter() - start

        def recompute_replay():
            g = _instance()
            start = time.perf_counter()
            for batch in batches:
                ins, dels = batch.net_against(g.has_edge)
                g.remove_edges(map(tuple, dels.tolist()))
                g.add_edges(map(tuple, ins.tolist()))
                count_cliques(g, P, backend="csr")  # fresh snapshot each time
            return time.perf_counter() - start

        incremental_samples = [incremental_replay() for _ in range(REPEATS)]
        recompute_samples = [recompute_replay() for _ in range(REPEATS)]
        timings.update(
            {
                "track_cold_s": track_cold_s,
                "incremental_s": min(incremental_samples),
                "incremental_samples_s": incremental_samples,
                "recompute_s": min(recompute_samples),
                "recompute_samples_s": recompute_samples,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    speedup = timings["recompute_s"] / timings["incremental_s"]
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={EDGE_P} seed=0",
            "stream": f"churn {BATCHES} batches x {CHURN} del+reinsert",
            "p": P,
            "final_count": counts[-1],
            "compact_every": COMPACT_EVERY,
            "track_cold_s": round(timings["track_cold_s"], 4),
            "incremental_s": round(timings["incremental_s"], 4),
            "incremental_samples_s": [
                round(s, 4) for s in timings["incremental_samples_s"]
            ],
            "recompute_s": round(timings["recompute_s"], 4),
            "recompute_samples_s": [
                round(s, 4) for s in timings["recompute_samples_s"]
            ],
            "steady_speedup": round(speedup, 1),
            **bench_env,
        }
    )
    # The >= 5x floor — amortized incremental maintenance (including its
    # periodic compactions) vs per-batch full recompute — is enforced by
    # scripts/check_bench.py against the raw samples.
