"""E-kernel: CSR clique kernels vs the pure-Python ground truth.

Measures the backend seam on the ISSUE-2 reference instance —
ER n = 2000, p_edge = 0.05 (≈ 100k edges, ≈ 167k triangles) — at
p = 3 and p = 4, plus the orientation kernel.  Three numbers matter:

- ``python``      — the dict/set explicit-stack enumeration (the spec);
- ``csr_cold``    — first CSR call on a fresh graph: snapshot build +
  degeneracy order + bitset packing + level pipeline + set
  materialization;
- ``csr_steady``  — the verification pipeline's view: the snapshot and
  its clique table are memoized on the immutable ``CSRGraph``, so a
  repeat query costs one ``set.copy()``.

The acceptance floors (≥ 5× steady at p = 3, cold within 2× of python)
are enforced by ``scripts/check_bench.py`` over the emitted JSON — the
single source of truth for every gated bench's floor ratios.  The cold
ratio is reported alongside so nobody mistakes memoized for miraculous.
Every timed run cross-checks that all paths return the identical clique
set before any number is reported.
"""

from __future__ import annotations

import time

import pytest

from repro.graphs.cliques import count_cliques, enumerate_cliques
from repro.graphs.orientation import degeneracy_orientation
from repro.workloads import create_workload

N = 2000
EDGE_P = 0.05
# Best-of-5: the bench boxes show 3-4x run-to-run variance, and a single
# unlucky scheduler slice on the fast side can sink a ratio gate.  Five
# repeats keep the minimum robust without stretching the job.
REPEATS = 5


def _instance():
    return create_workload("er", density=EDGE_P).instance(N, seed=0)


@pytest.mark.parametrize("p", [3, 4])
def test_enumerate_backend_speedup(benchmark, best_of, bench_env, p):
    timings = {}

    def measure():
        python_graph = _instance()
        python_s, python_set, python_samples, python_meta = best_of(
            lambda: enumerate_cliques(python_graph, p, backend="python"), REPEATS
        )
        csr_graph = _instance()
        cold_start = time.perf_counter()
        cold_set = enumerate_cliques(csr_graph, p, backend="csr")
        cold_s = time.perf_counter() - cold_start
        steady_s, steady_set, steady_samples, steady_meta = best_of(
            lambda: enumerate_cliques(csr_graph, p, backend="csr"), REPEATS
        )
        assert python_set == cold_set == steady_set  # correctness before speed
        timings.update(
            {
                "cliques": len(python_set),
                "python_s": python_s,
                "python_samples_s": python_samples,
                "csr_cold_s": cold_s,
                "csr_steady_s": steady_s,
                "csr_steady_samples_s": steady_samples,
                "python_timing": python_meta,
                "csr_steady_timing": steady_meta,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    cold_speedup = timings["python_s"] / timings["csr_cold_s"]
    steady_speedup = timings["python_s"] / timings["csr_steady_s"]
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={EDGE_P} seed=0",
            "p": p,
            "cliques": timings["cliques"],
            "python_s": round(timings["python_s"], 4),
            "python_samples_s": [round(s, 4) for s in timings["python_samples_s"]],
            "csr_cold_s": round(timings["csr_cold_s"], 4),
            # 7 decimals: the steady read is a cached-frozenset return
            # (~1 us) since the columnar-table refactor — 5 decimals
            # would round the samples to 0.0 and blind the gate.
            "csr_steady_s": round(timings["csr_steady_s"], 7),
            "csr_steady_samples_s": [
                round(s, 7) for s in timings["csr_steady_samples_s"]
            ],
            "python_timing": timings["python_timing"],
            "csr_steady_timing": timings["csr_steady_timing"],
            "cold_speedup": round(cold_speedup, 2),
            "steady_speedup": round(steady_speedup, 1),
            **bench_env,
        }
    )
    # Floors (steady >= 5x, cold within 2x of python) are enforced by
    # scripts/check_bench.py against the raw samples recorded above.


def test_count_kernel_never_materializes(benchmark, best_of, bench_env):
    """Counting goes through popcounts — no 167k frozensets."""
    g = _instance()
    enumerate_cliques(g, 3, backend="csr")  # warm the snapshot

    def measure():
        python_s, python_count, _, _ = best_of(
            lambda: count_cliques(g, 3, backend="python"), 1
        )
        csr_fresh = _instance()
        csr_s, csr_count, csr_samples, csr_meta = best_of(
            lambda: count_cliques(csr_fresh, 3, backend="csr"), REPEATS
        )
        assert python_count == csr_count
        return python_s, csr_s, csr_samples, csr_meta, csr_count

    python_s, csr_s, csr_samples, csr_meta, triangles = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    benchmark.extra_info.update(
        {
            "triangles": triangles,
            "python_s": round(python_s, 4),
            "csr_s": round(csr_s, 4),
            "csr_samples_s": [round(s, 4) for s in csr_samples],
            "csr_timing": csr_meta,
            "speedup": round(python_s / csr_s, 2),
            **bench_env,
        }
    )
    # Kernel floor: the popcount pipeline re-executes on every call (only
    # the snapshot/orientation are reused between repeats), so the >= 5x
    # floor in scripts/check_bench.py catches a real CSR kernel
    # regression that the memoized steady-state numbers above would
    # hide.  Measured margin is ~50x.


def test_orientation_backend_consistent_and_timed(benchmark, best_of):
    """Both orientation backends, timed on the reference instance; the
    csr path must reproduce the python orientation exactly (the
    differential suite re-checks this across families)."""
    g = _instance()

    def measure():
        python_s, py, _, _ = best_of(
            lambda: degeneracy_orientation(g, backend="python"), 1
        )
        csr_s, via_csr, csr_samples, _ = best_of(
            lambda: degeneracy_orientation(g, backend="csr"), REPEATS
        )
        assert py.max_out_degree == via_csr.max_out_degree
        sample = range(0, g.num_nodes, 97)
        assert all(py.out_neighbors(v) == via_csr.out_neighbors(v) for v in sample)
        return python_s, csr_s, csr_samples, py.max_out_degree

    python_s, csr_s, csr_samples, degeneracy = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    benchmark.extra_info.update(
        {
            "degeneracy": degeneracy,
            "python_s": round(python_s, 4),
            "csr_s": round(csr_s, 4),
            "csr_samples_s": [round(s, 4) for s in csr_samples],
        }
    )
