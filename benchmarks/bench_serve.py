"""E-serve: open-loop latency and sustained QPS of the query service.

The ISSUE-7 acceptance gate: the :class:`repro.serve.CliqueService`
front end over an ER n = 600 instance, under a **mixed** workload —
zipfian reads (counts + clique sets) at a fixed offered rate with churn
ingest interleaved on its own thread — must *sustain* at least half the
offered rate (floor in ``scripts/check_bench.py``; cpu-gated like the
parallel floor, because a 1-core box interleaves the reader pool and
the ingest thread on one core and measures scheduling, not serving).

The recorded numbers are the serving truth, not proxies: latency is
open-loop (completion minus *scheduled* arrival, so queueing delay
lands in the tail), and one verified replay precedes the timed samples
— every response checked against the differential recompute for the
epoch it pinned.  A second, floor-free benchmark records p50/p99 across
all four traffic patterns (uniform / zipfian / hotspot / bursty) for
the trajectory table.
"""

from __future__ import annotations

import numpy as np

from repro.serve import CliqueService, create_traffic, run_open_loop
from repro.stream import UpdateBatch
from repro.workloads import create_workload

N = 600
EDGE_P = 0.02
P = 3
REQUESTS = 400
RATE = 400.0  # offered load, requests/second
INGEST_BATCHES = 8
CHURN = 32
COMPACT_EVERY = 128
QUERY_THREADS = 4
REPEATS = 3  # best-of on sustained QPS, raw samples recorded
READ_MIX = {"count": 0.6, "cliques": 0.4}


def _instance():
    return create_workload("er", density=EDGE_P).instance(N, seed=0)


def _churn_batches(graph, seed=1):
    """Deterministic churn: delete CHURN live edges, re-insert last batch's."""
    rng = np.random.default_rng(seed)
    edges = sorted(graph.edge_set())
    previous = []
    batches = []
    for _ in range(INGEST_BATCHES):
        picked = rng.choice(len(edges), size=CHURN, replace=False)
        dropped = [edges[i] for i in sorted(picked.tolist())]
        batches.append(
            UpdateBatch.concat(
                [UpdateBatch.inserts(previous), UpdateBatch.deletes(dropped)]
            )
        )
        dropped_set = set(dropped)
        edges = sorted((set(edges) - dropped_set) | set(previous))
        previous = dropped
    return batches


def _one_run(pattern_name, verify, seed=0):
    service = CliqueService(
        _instance(), ps=(P,), compact_every=COMPACT_EVERY,
        query_threads=QUERY_THREADS,
    )
    batches = _churn_batches(_instance())
    with service:
        report = run_open_loop(
            service,
            create_traffic(pattern_name),
            requests=REQUESTS,
            rate=RATE,
            read_mix=READ_MIX,
            seed=seed,
            ingest=batches,
            verify=verify,
        )
    assert report.completed == REQUESTS and report.errors == 0
    if verify:
        assert report.mismatches == [], report.mismatches[:3]
    return report


def test_serve_mixed_open_loop(benchmark, bench_env):
    timings = {}

    def measure():
        # Correctness before speed: one fully verified replay (every
        # response differentially checked for its pinned epoch).
        verified = _one_run("zipfian", verify=True)
        sustained, p50, p99 = [], [], []
        for i in range(REPEATS):
            report = _one_run("zipfian", verify=False, seed=i)
            sustained.append(report.sustained_qps)
            p50.append(report.p50_ms)
            p99.append(report.p99_ms)
        timings.update(
            {
                "verified_requests": verified.completed,
                "epochs_published": verified.epochs_published,
                "max_live_epochs": verified.max_live_epochs,
                "sustained_qps_samples": sustained,
                "p50_ms_samples": p50,
                "p99_ms_samples": p99,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={EDGE_P} seed=0",
            "p": P,
            "pattern": "zipfian",
            "read_mix": READ_MIX,
            "requests": REQUESTS,
            "offered_qps": RATE,
            "ingest": f"{INGEST_BATCHES} batches x {CHURN} del+reinsert",
            "query_threads": QUERY_THREADS,
            "verified_requests": timings["verified_requests"],
            "epochs_published": timings["epochs_published"],
            "max_live_epochs": timings["max_live_epochs"],
            "sustained_qps_samples": [
                round(s, 1) for s in timings["sustained_qps_samples"]
            ],
            "sustained_qps": round(max(timings["sustained_qps_samples"]), 1),
            "p50_ms_samples": [round(s, 3) for s in timings["p50_ms_samples"]],
            "p99_ms_samples": [round(s, 3) for s in timings["p99_ms_samples"]],
            "p50_ms": round(min(timings["p50_ms_samples"]), 3),
            "p99_ms": round(min(timings["p99_ms_samples"]), 3),
            **bench_env,
        }
    )
    # The sustained/offered >= 0.5 floor (cpus permitting) is enforced by
    # scripts/check_bench.py against the raw samples recorded above.


def test_serve_pattern_latencies(benchmark, bench_env):
    """p50/p99 across all four traffic patterns — floor-free trajectory
    rows (key-distribution skew should move cache locality, not
    correctness or throughput)."""
    results = {}

    def measure():
        for name in ("uniform", "zipfian", "hotspot", "bursty"):
            report = _one_run(name, verify=False)
            results[name] = {
                "sustained_qps": round(report.sustained_qps, 1),
                "p50_ms": round(report.p50_ms, 3),
                "p99_ms": round(report.p99_ms, 3),
            }
        return results

    benchmark.pedantic(measure, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={EDGE_P} seed=0",
            "offered_qps": RATE,
            "requests": REQUESTS,
            **{
                f"{name}_{key}": value
                for name, row in results.items()
                for key, value in row.items()
            },
            **bench_env,
        }
    )
