"""E8 (§2.4.3): per-node load bounds of the in-cluster machinery.

Regenerates the three measured-load inequalities of the analysis:
- reshuffle ownership: ≤ ⌈n/k⌉ · A edges per cluster node;
- sparsity-aware receive load: O(p² · m_known / k^{2/p}) words;
- gather: each node learns Õ(n^{3/4+d}) edges from outside (Remark 2.10),
  here checked against the measured per-node maxima recorded in the
  ledger stats.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.congest.ledger import RoundLedger
from repro.core.arb_list import ArbListState, arb_list
from repro.core.params import AlgorithmParameters
from repro.graphs.generators import erdos_renyi
from repro.graphs.orientation import Orientation, degeneracy_orientation


def run_one_arb(n=96, density=0.45, p=4, seed=6):
    g = erdos_renyi(n, density, seed=seed)
    orientation = degeneracy_orientation(g)
    state = ArbListState(
        n=n,
        es_edges=set(),
        es_orientation=Orientation(n),
        er_edges=g.edge_set(),
        orientation=orientation,
        arboricity=max(1, orientation.max_out_degree),
        threshold=7,
    )
    params = AlgorithmParameters(p=p)
    ledger = RoundLedger()
    outcome = arb_list(state, params, np.random.default_rng(0), ledger, "arb")
    return g, state, ledger, outcome


def test_reshuffle_ownership_balance(benchmark):
    def run():
        return run_one_arb()

    g, state, ledger, outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    reshuffle_phases = [p_ for p_ in ledger.phases() if "reshuffle" in p_.name]
    assert reshuffle_phases
    worst_words = max(p_.stats.get("max_recv_words", 0) for p_ in reshuffle_phases)
    # Ownership bound: each member owns ≤ ⌈n/k⌉ sources × A out-edges,
    # at 2 words per edge.  k ≥ threshold here; use the loosest k seen.
    n = g.num_nodes
    bound = 2 * math.ceil(n / state.threshold) * state.arboricity
    benchmark.extra_info.update(
        {"worst_reshuffle_recv_words": worst_words, "ownership_bound_words": bound}
    )
    assert worst_words <= bound


def test_sparsity_receive_load(benchmark):
    def run():
        return run_one_arb()

    g, state, ledger, outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    learn_phases = [p_ for p_ in ledger.phases() if "learn_edges" in p_.name]
    assert learn_phases
    p = 4
    for phase in learn_phases:
        max_recv = phase.stats.get("max_recv_words", 0)
        known = phase.stats.get("known_edges", 0)
        cluster_k = phase.stats.get("cluster_size", state.threshold)
        if not known:
            continue
        bound = 8 * p * p * 2 * known / (cluster_k ** (2 / p))
        benchmark.extra_info.setdefault("rows", []).append(
            {
                "max_recv_words": max_recv,
                "known_edges": known,
                "bound": round(bound, 1),
            }
        )
        assert max_recv <= bound


def test_gather_remark_2_10(benchmark):
    """Remark 2.10: each cluster node learns Õ(n^{3/4+d}) outside edges."""

    def run():
        return run_one_arb()

    g, state, ledger, outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    n = g.num_nodes
    d = math.log(max(2, state.arboricity)) / math.log(n)
    budget = (n ** (0.75 + d)) * math.log2(n)
    worst = ledger.max_stat("received_max_per_node") or 0
    benchmark.extra_info.update(
        {"worst_gathered_edges": worst, "remark_2_10_budget": round(budget, 1)}
    )
    assert worst <= budget
