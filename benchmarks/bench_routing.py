"""E-routing: batch vs object routing plane on the Theorem 1.3 driver.

The ISSUE-3 acceptance floor: the end-to-end congested-clique listing
driver (orientation → partition → §2.4.3 edge fan-out → per-node learned-
subgraph listing) on ER n = 1500, p = 3 must be ≥ 5× faster on the
columnar batch plane than on the per-message tuple plane, with the two
planes charging **byte-identical** ledger rounds.  The floor itself is
enforced by ``scripts/check_bench.py`` over the emitted JSON.

Timing protocol (shared with bench_kernel): best-of-5 on the fast batch
side — the bench boxes show 3-4x run-to-run variance, and the minimum is
the robust estimator for a deterministic computation.  ``steady`` means
repeat invocations on the same ``Graph`` object, so the batch plane's
memoized CSR snapshot is warm — exactly the sweep runner's view of
repeated listing calls.  The cold (first-call) number is reported
alongside so nobody mistakes memoized for miraculous.  The object plane
has no snapshot to warm and takes ~36 s per run, so it gets
``OBJECT_REPEATS`` repeats — relative noise on the long deterministic
side is small against the gate's ~14x margin.

Every timed run is cross-checked: identical clique sets, identical
per-node attribution, identical (name, rounds) ledger rows.
"""

from __future__ import annotations

import time

from repro.core.congested_clique_listing import list_cliques_congested_clique
from repro.workloads import create_workload

N = 1500
P = 3
EDGE_P = 0.01  # ~11k edges -> ~675k routed messages on both planes
REPEATS = 5  # best-of, to ride out the 3-4x bench-box timing variance
# The ratio's noise lives almost entirely on the sub-second batch side;
# an unlucky slice on a ~36 s deterministic object run moves the ratio
# by a few percent against a ~14x margin.  Two object repeats keep the
# reference honest without tripling the job's wall-clock.
OBJECT_REPEATS = 2


def _instance():
    return create_workload("er", density=EDGE_P).instance(N, seed=0)


def _ledger_rows(result):
    return [(ph.name, ph.rounds) for ph in result.ledger.phases()]


def test_routing_plane_speedup(benchmark, best_of, bench_env):
    timings = {}

    def measure():
        g = _instance()
        cold_start = time.perf_counter()
        cold = list_cliques_congested_clique(g, P, seed=0, plane="batch")
        cold_s = time.perf_counter() - cold_start
        batch_s, batch, batch_samples, batch_meta = best_of(
            lambda: list_cliques_congested_clique(g, P, seed=0, plane="batch"),
            REPEATS,
        )
        object_s, obj, object_samples, object_meta = best_of(
            lambda: list_cliques_congested_clique(g, P, seed=0, plane="object"),
            OBJECT_REPEATS,
        )
        # Correctness before speed: identical outputs, identical charges.
        assert batch.cliques == cold.cliques == obj.cliques
        assert batch.per_node == obj.per_node
        assert _ledger_rows(batch) == _ledger_rows(obj)
        timings.update(
            {
                "cliques": len(batch.cliques),
                "rounds": batch.rounds,
                "batch_cold_s": cold_s,
                "batch_steady_s": batch_s,
                "batch_steady_samples_s": batch_samples,
                "object_s": object_s,
                "object_samples_s": object_samples,
                "batch_timing": batch_meta,
                "object_timing": object_meta,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    steady_speedup = timings["object_s"] / timings["batch_steady_s"]
    cold_speedup = timings["object_s"] / timings["batch_cold_s"]
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={EDGE_P} seed=0",
            "p": P,
            "cliques": timings["cliques"],
            "rounds": round(timings["rounds"], 1),
            "object_s": round(timings["object_s"], 3),
            "object_samples_s": [round(s, 3) for s in timings["object_samples_s"]],
            "batch_cold_s": round(timings["batch_cold_s"], 3),
            "batch_steady_s": round(timings["batch_steady_s"], 4),
            "batch_steady_samples_s": [
                round(s, 4) for s in timings["batch_steady_samples_s"]
            ],
            "batch_timing": timings["batch_timing"],
            "object_timing": timings["object_timing"],
            "cold_speedup": round(cold_speedup, 1),
            "steady_speedup": round(steady_speedup, 1),
            **bench_env,
        }
    )
    # The >= 5x floor is enforced by scripts/check_bench.py against the
    # raw samples (measured margin is ~10x beyond it).
