"""Columnar clique tables vs the frozenset floor.

Measures the result-type refactor on the kernel-bench reference
instance — ER n = 2000, p_edge = 0.05 (≈ 167k triangles) — at p = 3
and p = 4.  Two comparisons matter:

- **consumption**: delivering a queryable, verified listing as a
  canonical :class:`~repro.graphs.table.CliqueTable` vs the legacy path
  (materialize every clique as a python frozenset and compare sets).
  ``table_steady`` is the stack's actual read path — engines, epochs
  and the verifier share the kernel's cached canonical table and
  compare matrices with ``np.array_equal`` — and carries the gate;
  ``table_cold`` (canonicalize a raw int64 kernel matrix from scratch)
  is reported alongside so nobody mistakes cached for miraculous.
  Wall time **and** allocation peak (tracemalloc) are recorded: the
  frozenset floor was ~100 ns and ~200 bytes *per clique*, the table
  path is a handful of numpy passes total.
- **popcount width**: the cache-blocked popcount reduction over the
  same bitset bytes viewed as uint64 words vs uint8 bytes — the packing
  change in ``repro.graphs.csr`` (8× fewer lanes for numpy to chew).

The floors (table path ≥ 5× the frozenset path; uint64 ≥ 1.5× uint8)
are enforced by ``scripts/check_bench.py`` over the emitted JSON.
Every timed run cross-checks that both paths agree before any number
is reported.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.graphs.csr import _popcount_sum
from repro.graphs.table import CliqueTable, materialize_rows
from repro.workloads import create_workload

N = 2000
EDGE_P = 0.05
# Best-of-5, same protocol as bench_kernel (3-4x bench-box variance).
REPEATS = 5


def _instance():
    return create_workload("er", density=EDGE_P).instance(N, seed=0)


def _peak_bytes(fn) -> int:
    """Allocation high-water mark of one call, via tracemalloc."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.parametrize("p", [3, 4])
def test_table_vs_frozenset_consumption(benchmark, best_of, bench_env, p):
    """Deliver + verify one listing: canonical table vs frozenset path."""
    csr = _instance().to_csr()
    truth = csr.clique_result(p)  # warm kernel; the verifier's table
    raw = np.array(csr.clique_table(p))  # fresh int64 kernel matrix
    truth_set = truth.as_frozenset()

    def table_steady():
        # The stack's read path: the kernel's canonical table is cached
        # on the snapshot (engines/epochs alias it), a verify-read is a
        # matrix equality — no per-clique python objects, ever.
        produced = csr.clique_result(p)
        assert produced == truth  # np.array_equal — the verify fast path
        return len(produced)

    def table_cold():
        produced = CliqueTable.from_rows(raw, p=p)
        assert produced == truth
        return len(produced)

    def frozenset_path():
        produced = materialize_rows(raw)
        assert produced == truth_set  # the legacy set comparison
        return len(produced)

    timings = {}

    def measure():
        steady_s, count, steady_samples, steady_meta = best_of(
            table_steady, REPEATS
        )
        cold_s, cold_count, _, _ = best_of(table_cold, REPEATS)
        set_s, set_count, set_samples, set_meta = best_of(frozenset_path, REPEATS)
        assert count == cold_count == set_count == len(truth)
        timings.update(
            {
                "cliques": count,
                "table_steady_s": steady_s,
                "table_steady_samples_s": steady_samples,
                "table_cold_s": cold_s,
                "frozenset_s": set_s,
                "frozenset_samples_s": set_samples,
                "table_steady_timing": steady_meta,
                "frozenset_timing": set_meta,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    # Allocation peaks in a separate untimed pass (tracemalloc slows
    # every allocation, so it must never overlap the wall samples).
    table_peak = _peak_bytes(table_steady)
    frozenset_peak = _peak_bytes(frozenset_path)
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={EDGE_P} seed=0",
            "p": p,
            "cliques": timings["cliques"],
            "table_steady_s": round(timings["table_steady_s"], 6),
            "table_steady_samples_s": [
                round(s, 6) for s in timings["table_steady_samples_s"]
            ],
            "table_cold_s": round(timings["table_cold_s"], 5),
            "frozenset_s": round(timings["frozenset_s"], 4),
            "frozenset_samples_s": [
                round(s, 4) for s in timings["frozenset_samples_s"]
            ],
            "table_steady_timing": timings["table_steady_timing"],
            "frozenset_timing": timings["frozenset_timing"],
            "table_peak_mb": round(table_peak / 2**20, 3),
            "frozenset_peak_mb": round(frozenset_peak / 2**20, 2),
            "steady_speedup": round(
                timings["frozenset_s"] / timings["table_steady_s"], 1
            ),
            "cold_speedup": round(timings["frozenset_s"] / timings["table_cold_s"], 2),
            "peak_ratio": round(frozenset_peak / max(1, table_peak), 2),
            **bench_env,
        }
    )
    # Floor (steady table read >= 5x the frozenset path) is enforced by
    # scripts/check_bench.py against the raw samples recorded above.


def test_uint64_popcount_beats_uint8(benchmark, best_of, bench_env):
    """The same bitset bytes, popcount-reduced as uint64 vs uint8."""
    rng = np.random.default_rng(0)
    words = rng.integers(0, 2**63, size=(4096, 512), dtype=np.uint64)  # 16 MB
    bytes_view = words.view(np.uint8)

    timings = {}

    def measure():
        u64_s, u64_total, u64_samples, u64_meta = best_of(
            lambda: int(_popcount_sum(words)), REPEATS
        )
        u8_s, u8_total, u8_samples, u8_meta = best_of(
            lambda: int(_popcount_sum(bytes_view)), REPEATS
        )
        assert u64_total == u8_total  # same bytes, same bits
        timings.update(
            {
                "set_bits": u64_total,
                "uint64_s": u64_s,
                "uint64_samples_s": u64_samples,
                "uint8_s": u8_s,
                "uint8_samples_s": u8_samples,
                "uint64_timing": u64_meta,
                "uint8_timing": u8_meta,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "matrix": f"{words.shape[0]}x{words.shape[1]} uint64 (16 MiB)",
            "set_bits": timings["set_bits"],
            "uint64_s": round(timings["uint64_s"], 5),
            "uint64_samples_s": [round(s, 5) for s in timings["uint64_samples_s"]],
            "uint8_s": round(timings["uint8_s"], 5),
            "uint8_samples_s": [round(s, 5) for s in timings["uint8_samples_s"]],
            "uint64_timing": timings["uint64_timing"],
            "uint8_timing": timings["uint8_timing"],
            "speedup": round(timings["uint8_s"] / timings["uint64_s"], 2),
            **bench_env,
        }
    )
    # Floor (uint64 >= 1.5x uint8; measured ~3.5x) lives in
    # scripts/check_bench.py with the rest of the gates.
