"""E-dist: cluster dispatch over real TCP workers + out-of-core listing.

Two gated benchmarks (floors in ``scripts/check_bench.py``):

- ``test_cluster_tcp_listing_throughput`` boots two *real* local TCP
  workers (``python -m repro.dist.worker --port 0``), runs the sharded
  clique-table kernel through the cluster — every shard's arrays cross a
  socket as length-prefixed frames — and records it against the
  in-process serial kernel.  The floor only bounds the overhead (frames
  + pickling are pure cost on one box; the payoff is scale-out), and is
  skipped below 2 cpus where two workers measure scheduling.
- ``test_partition_listing_overhead`` persists an n = 50k sparse graph
  (past ``BITSET_MAX_NODES``, so the sorted-intersection regime) as a
  partitioned on-disk CSR and lists it partition-by-partition off
  ``np.memmap`` — asserting the rows are **byte-identical** to the
  in-memory listing and that the python-heap peak of one partition step
  (tracemalloc; memmap file pages live in the OS page cache, not the
  heap) stays bounded by the partition size, before recording the
  overhead ratio.

Timing protocol shared with the other gated benches: best-of-N on both
sides, raw samples recorded, cpu counts + wall-clock stamps merged in
from ``bench_env``.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.dist import Cluster, spawn_local_tcp, write_partitioned
from repro.graphs.csr import (
    clique_table_from_edge_array,
    table_from_forward_sorted,
)
from repro.graphs.generators import bounded_arboricity_graph, erdos_renyi

N_TCP = 2000
EDGE_P = 0.05  # ~100k edges -> ~167k triangles, well past MIN_PARALLEL_ITEMS
N_OOC = 50_000  # past BITSET_MAX_NODES: the sorted (streaming) regime
ARBORICITY = 3
PARTITIONS = 8
P = 3
REPEATS = 5
OOC_REPEATS = 3  # each sample is ~1.3s of kernel time; 3 bounds the bench


def _rows_sorted(table):
    return sorted(map(tuple, np.asarray(table).tolist()))


def test_cluster_tcp_listing_throughput(benchmark, best_of, bench_env):
    edges = erdos_renyi(N_TCP, EDGE_P, seed=0).to_csr().edge_table()
    timings = {}

    def measure():
        serial_s, serial, serial_samples, serial_meta = best_of(
            lambda: clique_table_from_edge_array(edges, P), REPEATS
        )
        with Cluster(spawn_local_tcp(2), name="bench-tcp") as cluster:
            cold_start = time.perf_counter()
            cold = cluster.clique_table(edges, P)
            cold_s = time.perf_counter() - cold_start  # worker boot already paid
            cluster_s, dist_table, cluster_samples, cluster_meta = best_of(
                lambda: cluster.clique_table(edges, P), REPEATS
            )
            stats = dict(cluster.stats)
        # Correctness before speed: identical row sets from both sides.
        assert _rows_sorted(serial) == _rows_sorted(cold) == _rows_sorted(dist_table)
        assert stats["dispatched"] >= 2 * (1 + REPEATS)  # real remote shards
        timings.update(
            {
                "rows": int(serial.shape[0]),
                "serial_s": serial_s,
                "serial_samples_s": serial_samples,
                "cluster_cold_s": cold_s,
                "cluster_s": cluster_s,
                "cluster_samples_s": cluster_samples,
                "serial_timing": serial_meta,
                "cluster_timing": cluster_meta,
                "shards_dispatched": stats["dispatched"],
                "shard_retries": stats["retries"],
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "instance": f"er n={N_TCP} p_edge={EDGE_P} seed=0",
            "p": P,
            "nodes": 2,
            "transport": "tcp (spawned local workers)",
            "rows": timings["rows"],
            "serial_s": round(timings["serial_s"], 4),
            "serial_samples_s": [round(s, 4) for s in timings["serial_samples_s"]],
            "cluster_cold_s": round(timings["cluster_cold_s"], 4),
            "cluster_s": round(timings["cluster_s"], 4),
            "cluster_samples_s": [
                round(s, 4) for s in timings["cluster_samples_s"]
            ],
            "serial_timing": timings["serial_timing"],
            "cluster_timing": timings["cluster_timing"],
            "shards_dispatched": timings["shards_dispatched"],
            "shard_retries": timings["shard_retries"],
            "overhead_ratio": round(timings["cluster_s"] / timings["serial_s"], 2),
            **bench_env,
        }
    )
    # The serial/cluster >= 0.2x floor (cpus permitting) is enforced by
    # scripts/check_bench.py over this JSON.


def test_partition_listing_overhead(benchmark, best_of, bench_env, tmp_path):
    graph = bounded_arboricity_graph(N_OOC, ARBORICITY, seed=0)
    csr = graph.to_csr()
    timings = {}

    def measure():
        # Time the raw in-memory kernel, not the memoizing CSRGraph
        # accessor — both sides must recompute on every sample.
        fptr, findices = csr.forward()
        inmemory_s, mem_table, inmemory_samples, inmemory_meta = best_of(
            lambda: table_from_forward_sorted(fptr, findices, P), OOC_REPEATS
        )
        pcsr = write_partitioned(csr, tmp_path / "part", partitions=PARTITIONS)
        memmap_s, mm_table, memmap_samples, memmap_meta = best_of(
            lambda: pcsr.clique_table(P), OOC_REPEATS
        )
        # Byte-identity, not set-equality: same order file, same kernels,
        # ranges concatenated in order.
        assert np.array_equal(mm_table, mem_table)
        assert np.array_equal(mm_table, csr.clique_table(P))
        assert pcsr.clique_result(P) == csr.clique_result(P)

        # The out-of-core contract: one partition step's python-heap peak
        # is bounded by the partition it touches, not the whole graph.
        # (memmap pages stream through the OS page cache; tracemalloc
        # sees the heap — slices, intersections, result rows — plus a
        # fixed floor for the materialized O(n) pointer array.)
        biggest = max(pcsr.partitions, key=lambda part: part.nbytes)
        pointer_floor = pcsr.fptr.nbytes
        tracemalloc.start()
        pcsr.partition_rows(biggest, P)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        budget = 4 * biggest.nbytes + pointer_floor + (1 << 21)
        assert peak <= budget, f"partition step peak {peak} > budget {budget}"
        timings.update(
            {
                "rows": int(mem_table.shape[0]),
                "inmemory_s": inmemory_s,
                "inmemory_samples_s": inmemory_samples,
                "memmap_s": memmap_s,
                "memmap_samples_s": memmap_samples,
                "inmemory_timing": inmemory_meta,
                "memmap_timing": memmap_meta,
                "partition_step_peak_bytes": int(peak),
                "partition_step_budget_bytes": int(budget),
                "max_partition_nbytes": pcsr.max_partition_nbytes,
                "num_forward_edges": pcsr.num_forward_edges,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "instance": f"sparse n={N_OOC} arboricity={ARBORICITY} seed=0",
            "p": P,
            "partitions": PARTITIONS,
            "rows": timings["rows"],
            "inmemory_s": round(timings["inmemory_s"], 4),
            "inmemory_samples_s": [
                round(s, 4) for s in timings["inmemory_samples_s"]
            ],
            "memmap_s": round(timings["memmap_s"], 4),
            "memmap_samples_s": [round(s, 4) for s in timings["memmap_samples_s"]],
            "inmemory_timing": timings["inmemory_timing"],
            "memmap_timing": timings["memmap_timing"],
            "partition_step_peak_bytes": timings["partition_step_peak_bytes"],
            "partition_step_budget_bytes": timings["partition_step_budget_bytes"],
            "max_partition_nbytes": timings["max_partition_nbytes"],
            "num_forward_edges": timings["num_forward_edges"],
            "overhead_ratio": round(timings["memmap_s"] / timings["inmemory_s"], 2),
            **bench_env,
        }
    )
    # The inmemory/memmap >= 0.2x floor is enforced by scripts/check_bench.py.
