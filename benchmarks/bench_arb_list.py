"""E6 (Theorem 2.9 / §2.4.1): ARB-LIST contraction and bad-edge fraction.

Two inequalities to regenerate:
- |Êr| ≤ |Er|/4 per ARB-LIST invocation (decomposition 1/6 + bad ≤ 1/25);
- at the paper's thresholds, the bad-edge fraction of cluster edges is
  ≤ 1/25 (at laptop n the threshold 100·√n·log n bites never — we also
  report a force-scaled run that actually demotes edges).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest.ledger import RoundLedger
from repro.core.arb_list import ArbListState, arb_list
from repro.core.bad_edges import bad_edge_fraction_bound
from repro.core.params import AlgorithmParameters
from repro.graphs.generators import erdos_renyi
from repro.graphs.orientation import Orientation, degeneracy_orientation


def fresh_state(graph, threshold):
    orientation = degeneracy_orientation(graph)
    return ArbListState(
        n=graph.num_nodes,
        es_edges=set(),
        es_orientation=Orientation(graph.num_nodes),
        er_edges=graph.edge_set(),
        orientation=orientation,
        arboricity=max(1, orientation.max_out_degree),
        threshold=threshold,
    )


def test_er_contraction_per_invocation(benchmark):
    g = erdos_renyi(96, 0.4, seed=3)
    params = AlgorithmParameters(p=4)
    trace = []

    def run():
        state = fresh_state(g, threshold=7)
        for _ in range(4):
            if not state.er_edges:
                break
            before = len(state.er_edges)
            arb_list(state, params, np.random.default_rng(0), RoundLedger())
            trace.append((before, len(state.er_edges)))
        return trace

    benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["er_trace"] = trace
    for before, after in trace:
        assert after <= before / 4, f"Êr contraction violated: {before} -> {after}"


def test_bad_edge_fraction_at_paper_threshold(benchmark):
    g = erdos_renyi(96, 0.45, seed=4)
    params = AlgorithmParameters(p=4)  # paper bad threshold: no demotion at this n

    def run():
        state = fresh_state(g, threshold=7)
        outcome = arb_list(state, params, np.random.default_rng(0), RoundLedger())
        return outcome

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    cluster_edges = len(outcome.goal_edges) + len(outcome.bad_edges)
    fraction = len(outcome.bad_edges) / max(1, cluster_edges)
    benchmark.extra_info.update(
        {
            "bad_edges": len(outcome.bad_edges),
            "cluster_edges": cluster_edges,
            "fraction": round(fraction, 4),
            "paper_bound": round(bad_edge_fraction_bound(), 4),
        }
    )
    assert fraction <= bad_edge_fraction_bound()


def test_bad_edges_forced_are_deferred_not_lost(benchmark):
    """Scale the bad threshold down until demotion actually happens, then
    check the demoted edges land in Êr (deferred, not dropped)."""
    g = erdos_renyi(96, 0.5, seed=5)
    params = AlgorithmParameters(p=4, bad_scale=0.002)

    def run():
        state = fresh_state(g, threshold=7)
        outcome = arb_list(state, params, np.random.default_rng(0), RoundLedger())
        return state, outcome

    state, outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["forced_bad_edges"] = len(outcome.bad_edges)
    assert outcome.bad_edges <= state.er_edges
