"""E1 (Theorem 1.1): CONGEST Kp listing rounds vs n, p ∈ {4, 5, 6}.

Regenerates the headline claim: round counts scale sub-linearly, with the
fitted exponent tracking max(3/4, p/(p+2)) up to polylog inflation.
Correctness (listing completeness) is asserted on every run.

Driven through the batched sweep runner (:mod:`repro.analysis.sweeps`)
rather than ad-hoc loops, so the bench exercises the same grid-expansion
and execution path as ``python -m repro.cli sweep``.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import fit_exponent
from repro.analysis.sweeps import SweepSpec, run_sweep
from repro.baselines import bounds
from repro.workloads import create_workload

DENSITY = 0.5
# At bench scale the initial arboricity (~n/4) sits right at the paper's
# stop threshold n^{3/4}; halving the stop keeps the full pipeline engaged
# at every size of the sweep so the fit measures one regime, not the
# engage/skip transition.
STOP_SCALE = 0.5


@pytest.mark.parametrize("p", [4, 5, 6])
def test_congest_rounds_vs_n(benchmark, congest_sizes, p):
    spec = SweepSpec(
        workloads=[("er", {"density": DENSITY})],
        sizes=congest_sizes,
        ps=[p],
        variants=["generic"],
        seed=0,
        verify=True,
        algo_overrides={"stop_scale": STOP_SCALE},
    )

    def sweep():
        return run_sweep(spec, cache_dir=None, jobs=1)

    result = benchmark.pedantic(sweep, iterations=1, rounds=1)
    rows = sorted(result.rows, key=lambda row: row["n"])
    for row in rows:
        assert row["stats"].get("outer_iterations", 0) >= 1, "pipeline must engage"
    sizes = [row["n"] for row in rows]
    measured = [row["rounds"] for row in rows]
    fit = fit_exponent(sizes, measured)
    theory_exponent = max(0.75, p / (p + 2.0))
    benchmark.extra_info.update(
        {
            "rounds_by_n": {str(n): r for n, r in zip(sizes, measured)},
            "fitted_exponent": round(fit.slope, 3),
            "theory_exponent": round(theory_exponent, 3),
            "theory_curve": {
                str(n): round(bounds.this_paper_congest(n, p), 1) for n in sizes
            },
        }
    )
    # Shape gate: rounds must grow sub-linearly-ish (the polylog factors
    # at small n push the fitted slope somewhat above the asymptotic
    # exponent; runaway growth would indicate a broken pipeline).
    assert measured[-1] > measured[0]
    assert fit.slope < 1.5


@pytest.mark.parametrize("p", [4, 5])
def test_congest_sublinear_vs_trivial(benchmark, congest_sizes, p):
    """Ours must beat the Θ(n)-ish neighborhood broadcast on dense inputs
    at the top of the sweep (the paper's raison d'être)."""
    from repro.baselines.broadcast import neighborhood_broadcast_listing
    from repro.core.listing import list_cliques_congest

    n = congest_sizes[-1]
    g = create_workload("er", density=DENSITY).instance(n, seed=0)

    def run():
        ours = list_cliques_congest(g, p, variant="generic", seed=n)
        trivial = neighborhood_broadcast_listing(g, p)
        return ours.rounds, trivial.rounds

    ours_rounds, trivial_rounds = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {"ours": ours_rounds, "neighborhood_broadcast": trivial_rounds}
    )
