"""E1 (Theorem 1.1): CONGEST Kp listing rounds vs n, p ∈ {4, 5, 6}.

Regenerates the headline claim: round counts scale sub-linearly, with the
fitted exponent tracking max(3/4, p/(p+2)) up to polylog inflation.
Correctness (listing completeness) is asserted on every run.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import fit_exponent
from repro.analysis.verification import verify_listing
from repro.baselines import bounds
from repro.core.listing import list_cliques_congest
from repro.core.params import AlgorithmParameters
from repro.graphs.generators import erdos_renyi

DENSITY = 0.5
# At bench scale the initial arboricity (~n/4) sits right at the paper's
# stop threshold n^{3/4}; halving the stop keeps the full pipeline engaged
# at every size of the sweep so the fit measures one regime, not the
# engage/skip transition.
STOP_SCALE = 0.5


def _run(n: int, p: int) -> float:
    g = erdos_renyi(n, DENSITY, seed=n)
    params = AlgorithmParameters(p=p, variant="generic", stop_scale=STOP_SCALE)
    result = list_cliques_congest(g, p, params=params, seed=n)
    verify_listing(g, result).raise_if_failed()
    assert result.stats["outer_iterations"] >= 1, "pipeline must engage"
    return result.rounds


@pytest.mark.parametrize("p", [4, 5, 6])
def test_congest_rounds_vs_n(benchmark, congest_sizes, p):
    rounds = {}

    def sweep():
        for n in congest_sizes:
            rounds[n] = _run(n, p)
        return rounds

    benchmark.pedantic(sweep, iterations=1, rounds=1)
    sizes = sorted(rounds)
    measured = [rounds[n] for n in sizes]
    fit = fit_exponent(sizes, measured)
    theory_exponent = max(0.75, p / (p + 2.0))
    benchmark.extra_info.update(
        {
            "rounds_by_n": {str(n): rounds[n] for n in sizes},
            "fitted_exponent": round(fit.slope, 3),
            "theory_exponent": round(theory_exponent, 3),
            "theory_curve": {
                str(n): round(bounds.this_paper_congest(n, p), 1) for n in sizes
            },
        }
    )
    # Shape gate: rounds must grow sub-linearly-ish (the polylog factors
    # at small n push the fitted slope somewhat above the asymptotic
    # exponent; runaway growth would indicate a broken pipeline).
    assert measured[-1] > measured[0]
    assert fit.slope < 1.5


@pytest.mark.parametrize("p", [4, 5])
def test_congest_sublinear_vs_trivial(benchmark, congest_sizes, p):
    """Ours must beat the Θ(n)-ish neighborhood broadcast on dense inputs
    at the top of the sweep (the paper's raison d'être)."""
    from repro.baselines.broadcast import neighborhood_broadcast_listing

    n = congest_sizes[-1]
    g = erdos_renyi(n, DENSITY, seed=n)

    def run():
        ours = list_cliques_congest(g, p, variant="generic", seed=n)
        trivial = neighborhood_broadcast_listing(g, p)
        return ours.rounds, trivial.rounds

    ours_rounds, trivial_rounds = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {"ours": ours_rounds, "neighborhood_broadcast": trivial_rounds}
    )
