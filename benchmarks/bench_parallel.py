"""E-parallel: shard-executor plane vs single-core batch plane.

The ISSUE-5 acceptance floor: the end-to-end Theorem 1.3 driver on
ER n = 2000, p = 3 must run ≥ 2× faster steady-state on the parallel
plane with 4 workers than on the single-core batch plane — with
**identical** clique sets, per-node attribution and ledger rows.  The
floor is enforced by ``scripts/check_bench.py`` over the emitted JSON,
and only where it is *physically meaningful*: the JSON records the cpu
counts the run had (``affinity_cpus``), and the checker skips the
parallel floor on boxes with fewer cpus than workers (a 4-worker pool
on a 1-core container measures scheduling, not scaling).

Timing protocol (shared with bench_kernel/bench_routing): best-of-5 on
both sides against the 3–4× bench-box variance, every raw sample
recorded.  ``steady`` means the memoized CSR snapshot is warm *and* the
worker pool is already forked — the first parallel call pays the pool
cold start, reported separately as ``parallel_cold_s``.

A second, floor-free benchmark records the sharded snapshot recount
(the streaming engine's compaction-time verification path) against the
serial counter on the heavier ER n = 2000, p_edge = 0.05 instance.
"""

from __future__ import annotations

import time

from repro.core.congested_clique_listing import list_cliques_congested_clique
from repro.core.params import AlgorithmParameters
from repro.graphs.csr import count_cliques_csr
from repro.parallel import get_executor
from repro.workloads import create_workload

N = 2000
P = 3
EDGE_P = 0.01  # ~20k edges -> ~1.3M routed messages on both planes
WORKERS = 4
REPEATS = 5  # best-of, to ride out the 3-4x bench-box timing variance
COUNT_EDGE_P = 0.05  # the recount instance (~100k edges, ~167k triangles)


def _instance(density=EDGE_P):
    return create_workload("er", density=density).instance(N, seed=0)


def _ledger_rows(result):
    return [(ph.name, ph.rounds, ph.stats) for ph in result.ledger.phases()]


def test_parallel_plane_speedup(benchmark, best_of, bench_env):
    params = AlgorithmParameters(p=P, plane="parallel", workers=WORKERS)
    timings = {}

    def measure():
        g = _instance()
        list_cliques_congested_clique(g, P, seed=0, plane="batch")  # warm CSR
        batch_s, batch, batch_samples, batch_meta = best_of(
            lambda: list_cliques_congested_clique(g, P, seed=0, plane="batch"),
            REPEATS,
        )
        cold_start = time.perf_counter()
        cold = list_cliques_congested_clique(g, P, params=params, seed=0)
        cold_s = time.perf_counter() - cold_start  # includes the pool fork
        parallel_s, par, parallel_samples, parallel_meta = best_of(
            lambda: list_cliques_congested_clique(g, P, params=params, seed=0),
            REPEATS,
        )
        # Correctness before speed: identical outputs, identical charges.
        assert par.cliques == cold.cliques == batch.cliques
        assert par.per_node == batch.per_node
        assert _ledger_rows(par) == _ledger_rows(batch)
        timings.update(
            {
                "cliques": len(par.cliques),
                "rounds": par.rounds,
                "batch_steady_s": batch_s,
                "batch_samples_s": batch_samples,
                "parallel_cold_s": cold_s,
                "parallel_steady_s": parallel_s,
                "parallel_samples_s": parallel_samples,
                "batch_timing": batch_meta,
                "parallel_timing": parallel_meta,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    steady_speedup = timings["batch_steady_s"] / timings["parallel_steady_s"]
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={EDGE_P} seed=0",
            "p": P,
            "workers": WORKERS,
            "cliques": timings["cliques"],
            "rounds": round(timings["rounds"], 1),
            "batch_steady_s": round(timings["batch_steady_s"], 4),
            "batch_samples_s": [round(s, 4) for s in timings["batch_samples_s"]],
            "parallel_cold_s": round(timings["parallel_cold_s"], 4),
            "parallel_steady_s": round(timings["parallel_steady_s"], 4),
            "parallel_samples_s": [
                round(s, 4) for s in timings["parallel_samples_s"]
            ],
            "batch_timing": timings["batch_timing"],
            "parallel_timing": timings["parallel_timing"],
            "steady_speedup": round(steady_speedup, 2),
            **bench_env,
        }
    )
    # The >= 2x floor (4 workers, cpus permitting) is enforced by
    # scripts/check_bench.py, which reads the cpu counts recorded above.


def test_sharded_recount(benchmark, best_of, bench_env):
    """Compaction-time recount: sharded exact count vs the serial kernel.

    Floor-free (recorded for trajectory): the win tracks core count and
    the instance is count-bound, not driver-bound.
    """
    executor = get_executor(WORKERS)
    timings = {}

    def measure():
        serial_snapshot = _instance(density=COUNT_EDGE_P).to_csr()
        serial_s, serial_count, serial_samples, serial_meta = best_of(
            lambda: count_cliques_csr(serial_snapshot, P), REPEATS
        )
        sharded_snapshot = _instance(density=COUNT_EDGE_P).to_csr()
        executor.count_csr(sharded_snapshot, P)  # warm pool + forward bits
        sharded_s, sharded_count, sharded_samples, sharded_meta = best_of(
            lambda: executor.count_csr(sharded_snapshot, P), REPEATS
        )
        assert serial_count == sharded_count  # exact, not approximate
        timings.update(
            {
                "count": serial_count,
                "serial_s": serial_s,
                "serial_samples_s": serial_samples,
                "sharded_s": sharded_s,
                "sharded_samples_s": sharded_samples,
                "serial_timing": serial_meta,
                "sharded_timing": sharded_meta,
            }
        )
        return timings

    benchmark.pedantic(measure, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "instance": f"er n={N} p_edge={COUNT_EDGE_P} seed=0",
            "p": P,
            "workers": WORKERS,
            "count": timings["count"],
            "serial_s": round(timings["serial_s"], 4),
            "serial_samples_s": [round(s, 4) for s in timings["serial_samples_s"]],
            "sharded_s": round(timings["sharded_s"], 4),
            "sharded_samples_s": [
                round(s, 4) for s in timings["sharded_samples_s"]
            ],
            "serial_timing": timings["serial_timing"],
            "sharded_timing": timings["sharded_timing"],
            "recount_speedup": round(timings["serial_s"] / timings["sharded_s"], 2),
            **bench_env,
        }
    )
