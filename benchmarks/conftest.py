"""Shared configuration for the benchmark harness.

Every benchmark verifies correctness before reporting timings, and
records the *simulated round counts* (the paper's metric) in
``benchmark.extra_info`` — wall-clock time of the simulator is secondary.
Sizes are kept laptop-scale; EXPERIMENTS.md documents the sweeps used for
the reported tables.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=["small", "full"],
        help="small: CI-friendly sizes; full: the EXPERIMENTS.md sweeps",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def congest_sizes(bench_scale):
    return [48, 72, 96] if bench_scale == "small" else [64, 96, 128, 192, 256]


@pytest.fixture(scope="session")
def cc_sizes(bench_scale):
    return [96] if bench_scale == "small" else [128, 256]
