"""Shared configuration for the benchmark harness.

Every benchmark verifies correctness before reporting timings, and
records the *simulated round counts* (the paper's metric) in
``benchmark.extra_info`` — wall-clock time of the simulator is secondary.
Sizes are kept laptop-scale; EXPERIMENTS.md documents the sweeps used for
the reported tables.
"""

from __future__ import annotations

import time

import pytest


@pytest.fixture(scope="session")
def best_of():
    """Shared best-of-N timing helper: ``(best, result, samples)``.

    Returns *all* raw samples (not just the min) so every gated
    benchmark records them in ``benchmark.extra_info`` — the emitted
    JSON then shows run-to-run variance (the bench boxes exhibit 3–4×
    noise) next to the gated ratios.  ``repeats`` is explicit at every
    call site so each benchmark's timing protocol stays visible.
    """

    def _best_of(fn, repeats):
        samples = []
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            samples.append(time.perf_counter() - start)
        return min(samples), result, samples

    return _best_of


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=["small", "full"],
        help="small: CI-friendly sizes; full: the EXPERIMENTS.md sweeps",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def congest_sizes(bench_scale):
    return [48, 72, 96] if bench_scale == "small" else [64, 96, 128, 192, 256]


@pytest.fixture(scope="session")
def cc_sizes(bench_scale):
    return [96] if bench_scale == "small" else [128, 256]
