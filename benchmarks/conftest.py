"""Shared configuration for the benchmark harness.

Every benchmark verifies correctness before reporting timings, and
records the *simulated round counts* (the paper's metric) in
``benchmark.extra_info`` — wall-clock time of the simulator is secondary.
Sizes are kept laptop-scale; EXPERIMENTS.md documents the sweeps used for
the reported tables.

Gate policy: the gated benches (kernel / routing / stream / parallel)
record raw best-of-N samples, wall-clock timestamps and cpu/worker
counts in their emitted ``--benchmark-json`` files; the committed floor
ratios live in **one place**, ``scripts/check_bench.py``, which CI runs
over the JSON artifacts.  Benches assert correctness inline but no
longer assert speed floors themselves.
"""

from __future__ import annotations

import os
import time
from datetime import datetime, timezone
from typing import Any, Dict, List, NamedTuple

import pytest


class TimedResult(NamedTuple):
    """One best-of-N measurement: the robust min, the last call's result,
    every raw sample, and the timing metadata cross-run comparisons need
    (the bench boxes show 3–4× run-to-run variance, so a ratio is only
    interpretable next to when and on how many cpus it was taken)."""

    best: float
    result: Any
    samples: List[float]
    meta: Dict[str, Any]


def _affinity_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="session")
def bench_env():
    """Machine/timing context every gated bench merges into its
    ``extra_info`` — cpu counts for the parallel gate's applicability
    check, wall-clock stamps so JSON artifacts order across runs."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "affinity_cpus": _affinity_cpus(),
        "wall_clock_unix": round(time.time(), 3),
        "wall_clock_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


@pytest.fixture(scope="session")
def best_of():
    """Shared best-of-N timing helper returning a :class:`TimedResult`.

    All raw samples (not just the min) land in the emitted JSON so the
    gate's margin can be read against the actual spread, and ``meta``
    carries start/end wall-clock stamps plus the cpu counts the run had
    — the context needed to compare ratios across bench boxes.
    ``repeats`` is explicit at every call site so each benchmark's
    timing protocol stays visible.
    """

    def _best_of(fn, repeats):
        samples = []
        result = None
        started = time.time()
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            samples.append(time.perf_counter() - start)
        meta = {
            "repeats": repeats,
            "started_unix": round(started, 3),
            "ended_unix": round(time.time(), 3),
            "cpu_count": os.cpu_count() or 1,
            "affinity_cpus": _affinity_cpus(),
        }
        return TimedResult(min(samples), result, samples, meta)

    return _best_of


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="small",
        choices=["small", "full"],
        help="small: CI-friendly sizes; full: the EXPERIMENTS.md sweeps",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def congest_sizes(bench_scale):
    return [48, 72, 96] if bench_scale == "small" else [64, 96, 128, 192, 256]


@pytest.fixture(scope="session")
def cc_sizes(bench_scale):
    return [96] if bench_scale == "small" else [128, 256]
