"""E5 (Definition 2.2 / Theorem 2.3): expander decomposition quality.

Regenerates the structural guarantees the listing algorithm consumes:
|Er| ≤ |E|/6, arboricity(Es) ≤ n^δ with a witness orientation, cluster
min internal degree ≥ n^δ, and polylog cluster mixing times — across
three structurally different graph families.
"""

from __future__ import annotations

import pytest

from repro.congest.ledger import RoundLedger
from repro.decomposition import expander_decomposition, validate_decomposition
from repro.decomposition.mixing import polylog_mixing_budget
from repro.graphs.generators import (
    bounded_arboricity_graph,
    clustered_graph,
    erdos_renyi,
)

FAMILIES = {
    "dense_er": lambda: (erdos_renyi(128, 0.4, seed=1), 10, None),
    "caveman": lambda: (
        clustered_graph(4, 32, intra_p=0.8, inter_edges_per_pair=2, seed=1),
        8,
        0.05,
    ),
    "sparse": lambda: (bounded_arboricity_graph(256, 3, seed=1), 8, None),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_decomposition_quality(benchmark, family):
    graph, threshold, phi = FAMILIES[family]()

    def run():
        ledger = RoundLedger()
        decomposition = expander_decomposition(
            graph, threshold=threshold, phi=phi, ledger=ledger
        )
        validate_decomposition(graph, decomposition, strict_mixing=True)
        return decomposition, ledger

    decomposition, ledger = benchmark.pedantic(run, iterations=1, rounds=1)
    stats = decomposition.stats()
    mixing = [
        c.mixing_time for c in decomposition.clusters if c.mixing_time is not None
    ]
    benchmark.extra_info.update(
        {
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "clusters": stats["num_clusters"],
            "er_fraction": round(stats["er_fraction"], 4),
            "es_out_degree": stats["es_out_degree"],
            "threshold": threshold,
            "worst_mixing_time": round(max(mixing), 1) if mixing else None,
            "mixing_budget": round(polylog_mixing_budget(graph.num_nodes), 1),
            "charged_rounds": round(ledger.total_rounds, 1),
        }
    )
    assert stats["er_fraction"] <= 1 / 6
    assert stats["es_out_degree"] <= threshold
