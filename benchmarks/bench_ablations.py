"""Ablations over the design choices DESIGN.md calls out.

A1 — routing slack: the Õ(1) factor of Theorem 2.4 (we default to
     log₂ n) vs "pure" slack-1 charging.  Separates the polylog overhead
     from the combinatorial load structure.
A2 — conductance target φ: lower φ accepts bigger/looser clusters
     (fewer, larger; smaller Er) while higher φ splits more aggressively
     (more Er, smaller clusters).  The decomposition's |Er| ≤ |E|/6 must
     hold across the sweep.
A3 — heavy threshold: raising it turns heavy nodes light, shifting cost
     from the heavy-push chunks to the light-pull lists; correctness is
     threshold-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.verification import verify_listing
from repro.congest.ledger import RoundLedger
from repro.congest.routing import CostModel
from repro.core.arb_list import ArbListState, arb_list
from repro.core.listing import list_cliques_congest
from repro.core.params import AlgorithmParameters
from repro.decomposition import expander_decomposition, validate_decomposition
from repro.graphs.generators import clustered_graph, erdos_renyi
from repro.graphs.orientation import Orientation, degeneracy_orientation


def test_a1_routing_slack(benchmark):
    g = erdos_renyi(96, 0.5, seed=11)
    results = {}

    def run():
        for label, slack in (("polylog", None), ("pure", 1)):
            params = AlgorithmParameters(
                p=4,
                variant="generic",
                stop_scale=0.5,
                cost_model=CostModel(routing_slack=slack),
            )
            result = list_cliques_congest(g, 4, params=params, seed=11)
            verify_listing(g, result).raise_if_failed()
            results[label] = result.rounds
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update({k: round(v, 1) for k, v in results.items()})
    # The slack multiplies only the routed phases; totals must order and
    # the ratio must stay below the full log factor (decomposition and
    # broadcast charges are slack-independent).
    assert results["pure"] < results["polylog"]
    import math

    assert results["polylog"] / results["pure"] <= math.log2(96) + 1


def test_a2_conductance_target(benchmark):
    g = clustered_graph(4, 32, intra_p=0.8, inter_edges_per_pair=4, seed=12)
    rows = {}

    def run():
        for phi in (0.01, 0.05, 0.15):
            decomposition = expander_decomposition(g, threshold=6, phi=phi)
            validate_decomposition(g, decomposition)
            stats = decomposition.stats()
            rows[phi] = {
                "clusters": stats["num_clusters"],
                "er_fraction": round(stats["er_fraction"], 4),
            }
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["rows"] = {str(k): v for k, v in rows.items()}
    # Higher phi must never produce fewer clusters on this workload.
    clusters = [rows[phi]["clusters"] for phi in (0.01, 0.05, 0.15)]
    assert clusters == sorted(clusters)
    for row in rows.values():
        assert row["er_fraction"] <= 1 / 6


def test_a3_heavy_threshold_shift(benchmark):
    g = clustered_graph(4, 32, intra_p=0.85, inter_edges_per_pair=10, seed=13)
    orientation = degeneracy_orientation(g)
    rows = {}

    def run():
        for label, scale in (("paper", 1.0), ("all_light", 1000.0), ("all_heavy", 1e-6)):
            state = ArbListState(
                n=g.num_nodes,
                es_edges=set(),
                es_orientation=Orientation(g.num_nodes),
                er_edges=g.edge_set(),
                orientation=orientation,
                arboricity=max(1, orientation.max_out_degree),
                threshold=6,
            )
            params = AlgorithmParameters(
                p=4, variant="generic", heavy_scale=scale, phi=0.05
            )
            ledger = RoundLedger()
            arb_list(state, params, np.random.default_rng(0), ledger, "arb")
            rows[label] = {
                "gather_heavy": round(ledger.rounds_by_prefix("arb/gather_heavy"), 1),
                "gather_light": round(ledger.rounds_by_prefix("arb/gather_light"), 1),
            }
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["rows"] = rows
    # All-light must pay nothing on the heavy push.  The all-heavy corner
    # still leaves g_{v,C} = 1 boundary nodes light (the threshold is a
    # strict 'greater than' with floor 1), so the light pull can only
    # shrink, while the heavy push must engage.
    assert rows["all_light"]["gather_heavy"] == 0
    assert rows["all_heavy"]["gather_heavy"] > 0
    assert rows["all_heavy"]["gather_light"] <= rows["paper"]["gather_light"]
