"""E10 (Theorem 2.8 / proof of Theorem 1.1): the iteration structure.

Regenerates three structural facts of the nested loops:
- one LIST call halves the arboricity witness (Ẽs out-degree ≤ A/2);
- the inner ARB-LIST loop runs O(log n) times (Êr decays by ≥ 4×);
- the outer loop runs O(log n) times before the final broadcast.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.verification import verify_listing
from repro.congest.ledger import RoundLedger
from repro.core.list_iteration import list_once
from repro.core.listing import list_cliques_congest
from repro.core.params import AlgorithmParameters
from repro.graphs.generators import erdos_renyi
from repro.graphs.orientation import degeneracy_orientation


def test_list_halves_arboricity(benchmark):
    g = erdos_renyi(96, 0.5, seed=7)
    params = AlgorithmParameters(p=4)

    def run():
        orientation = degeneracy_orientation(g)
        arboricity = max(1, orientation.max_out_degree)
        outcome = list_once(
            g, orientation, arboricity, params, np.random.default_rng(0), RoundLedger()
        )
        return arboricity, outcome

    arboricity, outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "arboricity_in": arboricity,
            "es_out_degree": outcome.es_orientation.max_out_degree,
            "arb_iterations": outcome.iterations,
            "log2_n": round(math.log2(96), 1),
        }
    )
    assert outcome.es_orientation.max_out_degree <= arboricity / 2 + 1
    assert outcome.iterations <= math.ceil(math.log2(96)) + 2


def test_outer_loop_is_logarithmic(benchmark):
    g = erdos_renyi(128, 0.5, seed=8)

    def run():
        result = list_cliques_congest(g, 4, variant="generic", seed=8)
        verify_listing(g, result).raise_if_failed()
        return result

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "outer_iterations": result.stats["outer_iterations"],
            "initial_arboricity": result.stats["initial_arboricity"],
            "stop_arboricity": result.stats["stop_arboricity"],
        }
    )
    assert result.stats["outer_iterations"] <= math.ceil(math.log2(128)) + 2


def test_per_iteration_cost_flat(benchmark):
    """The proof of Theorem 1.1 keeps per-LIST cost flat across the outer
    iterations (d and δ decrease together).  Verify no iteration costs an
    order of magnitude more than the first."""
    g = erdos_renyi(128, 0.5, seed=9)

    def run():
        result = list_cliques_congest(g, 4, variant="generic", seed=9)
        per_outer = {}
        for phase in result.ledger.phases():
            if phase.name.startswith("outer["):
                key = phase.name.split("/")[0]
                per_outer[key] = per_outer.get(key, 0.0) + phase.rounds
        return per_outer

    per_outer = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["rounds_per_outer_iteration"] = {
        k: round(v, 1) for k, v in per_outer.items()
    }
    if len(per_outer) >= 2:
        values = list(per_outer.values())
        assert max(values) <= 10 * max(values[0], 1.0)
