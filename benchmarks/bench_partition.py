"""E7 (Lemma 2.7): random sampling / partition balance.

Regenerates the two probabilistic facts the in-cluster listing rests on:
- sampling vertices with probability q induces ≤ 6q²m̄ edges w.h.p.;
- a uniform s-part partition puts O(m/s²) edges between every part pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.verification import verify_partition_bound
from repro.core.partition import (
    lemma_2_7_bound,
    lemma_2_7_conditions,
    max_pair_load,
    random_partition,
    sample_induced_edges,
)
from repro.graphs.generators import gnm_random_graph

TRIALS = 50


@pytest.mark.parametrize("q", [0.2, 0.4, 0.6])
def test_lemma_2_7_sampling(benchmark, q):
    g = gnm_random_graph(400, 12_000, seed=1)
    rng = np.random.default_rng(7)
    results = {"violations": 0, "worst_ratio": 0.0}

    def run():
        for _ in range(TRIALS):
            _, induced = sample_induced_edges(g, q, rng)
            bound = lemma_2_7_bound(g, q)
            results["worst_ratio"] = max(results["worst_ratio"], induced / bound)
            if induced > bound:
                results["violations"] += 1
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {
            "q": q,
            "trials": TRIALS,
            "conditions_hold": lemma_2_7_conditions(g, q),
            "violations": results["violations"],
            "worst_induced_over_bound": round(results["worst_ratio"], 3),
        }
    )
    assert results["violations"] == 0


@pytest.mark.parametrize("parts", [2, 3, 4])
def test_partition_pair_balance(benchmark, parts):
    g = gnm_random_graph(300, 9_000, seed=2)
    rng = np.random.default_rng(9)
    worst = {"load": 0}

    def run():
        for _ in range(TRIALS):
            partition = random_partition(g.num_nodes, parts, rng)
            worst["load"] = max(worst["load"], max_pair_load(g.edges(), partition))
        return worst

    benchmark.pedantic(run, iterations=1, rounds=1)
    expected = g.num_edges / (parts * parts)
    benchmark.extra_info.update(
        {
            "parts": parts,
            "worst_pair_load": worst["load"],
            "expected_per_pair": round(expected, 1),
            "worst_over_expected": round(worst["load"] / expected, 3),
        }
    )
    assert verify_partition_bound(g.num_edges, parts, worst["load"])
