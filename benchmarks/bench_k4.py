"""E2 (Theorem 1.2): the K4-specific variant vs the generic p = 4 path.

The K4 variant removes the light-gather term (Õ(n^{3/4}) → Õ(n^{2/3})).
The bench measures both on identical dense workloads and reports the
per-phase breakdown showing *where* the variant saves (no gather_light
phase; light K4s listed by the light nodes themselves).

Driven through the batched sweep runner: one grid over
workload × n × {generic, k4}, with per-phase rounds taken from the
``phases`` column of each result row.  Every run is verified against
ground truth, so both variants' outputs equal the true K4 set.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import SweepSpec, run_sweep

DENSITY = 0.5


def _phase_total(row, suffix):
    return sum(r for name, r in row["phases"].items() if name.endswith(suffix))


def test_k4_variant_vs_generic(benchmark, congest_sizes):
    spec = SweepSpec(
        workloads=[("er", {"density": DENSITY})],
        sizes=congest_sizes,
        ps=[4],
        variants=["generic", "k4"],
        seed=0,
        verify=True,
    )

    def sweep():
        return run_sweep(spec, cache_dir=None, jobs=1)

    result = benchmark.pedantic(sweep, iterations=1, rounds=1)
    by_size = {}
    for row in result.rows:
        by_size.setdefault(row["n"], {})[row["variant"]] = row

    comparison = {}
    for n in sorted(by_size):
        generic, k4 = by_size[n]["generic"], by_size[n]["k4"]
        # Both rows were verified against ground truth, so both listed
        # exactly the true K4 set.
        assert generic["cliques"] == k4["cliques"]
        comparison[n] = {
            "generic": generic["rounds"],
            "k4": k4["rounds"],
            "generic_gather_light": _phase_total(generic, "gather_light"),
            "k4_light_listing": _phase_total(k4, "light_listing"),
        }

    benchmark.extra_info["comparison"] = {
        str(n): {k: round(v, 1) for k, v in row.items()}
        for n, row in comparison.items()
    }
    # The variant never pays the generic light-gather; its replacement
    # phase must be present whenever the pipeline engaged.
    for row in comparison.values():
        assert row["k4"] > 0 and row["generic"] > 0
