"""E2 (Theorem 1.2): the K4-specific variant vs the generic p = 4 path.

The K4 variant removes the light-gather term (Õ(n^{3/4}) → Õ(n^{2/3})).
The bench measures both on identical dense workloads and reports the
per-phase breakdown showing *where* the variant saves (no gather_light
phase; light K4s listed by the light nodes themselves).
"""

from __future__ import annotations

import pytest

from repro.analysis.verification import verify_listing
from repro.core.listing import list_cliques_congest
from repro.graphs.generators import erdos_renyi

DENSITY = 0.5


def test_k4_variant_vs_generic(benchmark, congest_sizes):
    comparison = {}

    def sweep():
        for n in congest_sizes:
            g = erdos_renyi(n, DENSITY, seed=n)
            generic = list_cliques_congest(g, 4, variant="generic", seed=n)
            k4 = list_cliques_congest(g, 4, variant="k4", seed=n)
            verify_listing(g, generic).raise_if_failed()
            verify_listing(g, k4).raise_if_failed()
            assert generic.cliques == k4.cliques
            comparison[n] = {
                "generic": generic.rounds,
                "k4": k4.rounds,
                "generic_gather_light": sum(
                    ph.rounds
                    for ph in generic.ledger.phases()
                    if ph.name.endswith("gather_light")
                ),
                "k4_light_listing": sum(
                    ph.rounds
                    for ph in k4.ledger.phases()
                    if ph.name.endswith("light_listing")
                ),
            }
        return comparison

    benchmark.pedantic(sweep, iterations=1, rounds=1)
    benchmark.extra_info["comparison"] = {
        str(n): {k: round(v, 1) for k, v in row.items()}
        for n, row in comparison.items()
    }
    # The variant never pays the generic light-gather; its replacement
    # phase must be present whenever the pipeline engaged.
    for row in comparison.values():
        assert row["k4"] > 0 and row["generic"] > 0
